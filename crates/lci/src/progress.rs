//! The progress engine: who calls `progress`, and how idle cores sleep.
//!
//! The paper makes progress explicit and its evaluation hinges on *who*
//! invokes it: §5.3 shows the all-worker-progress pathology on
//! coarse-lock fabrics (every worker hammering the single sim-ofi
//! endpoint lock), while the companion AMT paper argues task runtimes
//! want to dedicate cores to progress and park the rest. This module
//! provides both ends of that spectrum and a middle ground:
//!
//! * [`ProgressMode::Workers`] — the status quo: worker threads poll
//!   [`Device::worker_progress`](crate::device::Device::worker_progress)
//!   through the trylock wrapper; nothing sleeps.
//! * [`ProgressMode::Dedicated`] — `n` dedicated progress threads
//!   partition the runtime's devices (device *i* belongs to thread
//!   `i % n`) and run an adaptive spin→yield→park loop: a full spin
//!   ramp while sweeps keep finding work (streaming), a short re-park
//!   ramp once the duty-cycle window shows mostly fruitless sweeps
//!   (trickle — the doorbell covers the wakeup); workers never poll,
//!   they block on completion signals instead.
//! * [`ProgressMode::Hybrid`] — dedicated threads as above, but workers
//!   may *steal* a progress call through the trylock path whenever the
//!   device's dedicated thread is parked.
//!
//! Parking is driven by per-device doorbells ([`lci_fabric::Doorbell`]):
//! the NIC simulators ring a device's bell on wire delivery and on
//! locally staged completions, and the LCI layer rings it when a worker
//! parks work in the device backlog. Each progress thread aggregates its
//! devices' bells into one thread-level bell (doorbell subscription) and
//! parks on that; the eventcount protocol (epoch read → poll → park only
//! if the epoch is unchanged) makes lost wakeups impossible — see the
//! [`lci_fabric::Doorbell`] docs and DESIGN.md §4.8 for the argument.

use crate::device::Device;
use crate::runtime::RuntimeInner;
use lci_fabric::sync::{Doorbell, MpmcArray, SpinLock};
use lci_fabric::topology;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Who drives progress for a runtime (`RuntimeConfig::progress_mode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressMode {
    /// Worker threads poll (the default; the paper's explicit-progress
    /// baseline). No progress threads are spawned.
    Workers,
    /// `n` dedicated progress threads own all polling; worker-side
    /// progress entry points become no-ops and blocking waits park on
    /// completion signals.
    Dedicated(usize),
    /// `n` dedicated progress threads, plus workers steal progress via
    /// the trylock path while a device's dedicated thread is parked.
    Hybrid(usize),
}

impl ProgressMode {
    /// Number of dedicated threads this mode asks for (0 for `Workers`).
    pub fn dedicated_threads(&self) -> usize {
        match self {
            ProgressMode::Workers => 0,
            ProgressMode::Dedicated(n) | ProgressMode::Hybrid(n) => *n,
        }
    }
}

/// Idle rounds before an idle progress thread stops spinning and yields.
const SPIN_ROUNDS: u32 = 64;
/// Idle rounds (spin + yield) before an idle progress thread parks.
const IDLE_ROUNDS_BEFORE_PARK: u32 = 192;
/// Short re-park ramp used while the thread is in the doorbell-driven
/// regime (its last sleep was a park): arrivals ring the bell, so there
/// is no point burning a long spin ramp between them.
const PARKED_SPIN_ROUNDS: u32 = 2;
/// Park threshold for the short ramp.
const PARKED_IDLE_ROUNDS: u32 = 8;
/// Consecutive useful sweeps that promote the thread back to the full
/// spin ramp: back-to-back work means a streaming phase, where staying
/// awake beats paying a wakeup per batch.
const BUSY_STREAK: u32 = 4;
/// Duty-cycle window: every this-many sweeps the thread checks what
/// fraction found work and demotes itself to the doorbell-driven (short
/// ramp) regime when fewer than 1 in [`DUTY_DENOM`] did. This is what
/// bootstraps parking under a *trickle* load — work arriving every few
/// dozen sweeps resets a consecutive-idle counter forever without ever
/// letting it reach the full ramp's park threshold.
const DUTY_WINDOW: u32 = 128;
/// See [`DUTY_WINDOW`]: demote when `useful * DUTY_DENOM <= sweeps`.
const DUTY_DENOM: u32 = 8;
/// Belt-and-braces park bound: a parked thread re-sweeps at least this
/// often even if every doorbell stays silent. Not part of the lost-wakeup
/// correctness argument (the eventcount protocol is), just a backstop.
const PARK_TIMEOUT: Duration = Duration::from_millis(250);

/// The dedicated progress threads of one runtime.
///
/// Threads hold only a [`Weak`] reference to the runtime, so user handles
/// dropping is enough to wind the engine down; `shutdown` (run from the
/// runtime's `Drop`, or explicitly) rings every thread's bell so parked
/// threads notice immediately instead of waiting out [`PARK_TIMEOUT`].
pub(crate) struct ProgressEngine {
    /// Ends every progress thread's loop when set.
    shutdown: AtomicBool,
    /// Live progress threads. Zero means workers must poll for
    /// themselves (never spawned, explicitly stopped, or died on a fatal
    /// error — the error then resurfaces on the worker's own poll).
    active: AtomicUsize,
    /// Join handles, drained under a short lock at shutdown; the
    /// crate-idiomatic leaf [`SpinLock`] guards only the vector flips
    /// (push/drain) — never a join, a ring, or any polling.
    threads: SpinLock<Vec<std::thread::JoinHandle<()>>>,
    /// One aggregate bell per thread, for shutdown/new-device wakeups.
    /// An [`MpmcArray`] so [`ring_all`](Self::ring_all) — called on
    /// every device creation — reads lock-free; slots are cleared (not
    /// popped) at shutdown, so a later respawn appends fresh bells.
    bells: MpmcArray<Arc<Doorbell>>,
}

impl ProgressEngine {
    pub(crate) fn new() -> Self {
        Self {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            threads: SpinLock::new(Vec::new()),
            bells: MpmcArray::with_capacity(8),
        }
    }

    /// Whether dedicated progress threads are currently running.
    #[inline]
    pub(crate) fn engine_active(&self) -> bool {
        self.active.load(Ordering::Acquire) > 0
    }

    /// Spawns `nthreads` progress threads for `rt`. Devices are
    /// partitioned statically by index; devices allocated later are
    /// picked up on the owning thread's next loop iteration.
    pub(crate) fn spawn(rt: &Arc<RuntimeInner>, nthreads: usize) -> crate::error::Result<()> {
        if nthreads == 0 || nthreads > 64 {
            return Err(crate::error::FatalError::InvalidArg(
                "progress thread count must be in 1..=64".into(),
            ));
        }
        let engine = &rt.progress;
        // Reserve the engine under a short lock (a state flip: empty →
        // claimed); the actual spawning happens outside any lock.
        {
            let threads = engine.threads.lock();
            if !threads.is_empty() || engine.engine_active() {
                return Err(crate::error::FatalError::InvalidArg(
                    "progress threads already running".into(),
                ));
            }
            engine.shutdown.store(false, Ordering::Release);
            // Claiming token: `active` goes non-zero before the lock
            // drops, so a racing spawn sees the engine taken.
            engine.active.fetch_add(nthreads, Ordering::AcqRel);
        }
        for slot in 0..nthreads {
            let bell = Arc::new(Doorbell::new());
            let weak = Arc::downgrade(rt);
            let thread_bell = bell.clone();
            let handle = std::thread::Builder::new()
                .name(format!("lci-progress-{slot}"))
                .spawn(move || progress_thread_main(weak, slot, nthreads, thread_bell))
                .map_err(|e| {
                    engine.active.fetch_sub(nthreads - slot, Ordering::AcqRel);
                    crate::error::FatalError::Net(format!("spawning progress thread: {e}"))
                })?;
            engine.threads.lock().push(handle);
            engine.bells.push(bell);
        }
        Ok(())
    }

    /// Wakes every progress thread (e.g. after a new device is
    /// allocated, so its owner subscribes to the device's doorbell).
    /// Lock-free: reads the bell registry without touching any lock.
    pub(crate) fn ring_all(&self) {
        for i in 0..self.bells.len() {
            if let Some(bell) = self.bells.read(i) {
                bell.ring();
            }
        }
    }

    /// Stops and joins all progress threads. Safe to call from a progress
    /// thread itself (it skips self-join; that thread exits on its own
    /// right after, since the shutdown flag is set). Handles are drained
    /// under a short lock; ringing and joining happen outside it.
    pub(crate) fn shutdown_and_join(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.ring_all();
        let drained: Vec<_> = std::mem::take(&mut *self.threads.lock());
        let me = std::thread::current().id();
        for handle in drained {
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
        for i in 0..self.bells.len() {
            self.bells.clear_at(i);
        }
        self.active.store(0, Ordering::Release);
    }
}

/// One dedicated progress thread: sweep the devices in this thread's
/// partition, then spin → yield → park by idleness.
fn progress_thread_main(
    rt_weak: Weak<RuntimeInner>,
    slot: usize,
    nthreads: usize,
    bell: Arc<Doorbell>,
) {
    // Core-affine placement: home this thread on the logical core of
    // its device partition (device i belongs to thread i % nthreads, so
    // thread `slot` sits on core `slot` of the placement map). Its
    // stats cells, ctx-pool shard, and pool stripes all key off this
    // binding, keeping engine-side bookkeeping on the engine's core.
    // Logical only — OS affinity is the launcher's job (topology docs).
    if let Some(rt) = rt_weak.upgrade() {
        let p = rt.config.placement;
        if p.enabled && p.pin_progress {
            topology::bind_current_thread(slot % p.effective_cores());
        }
    }
    let mut idle: u32 = 0;
    // Consecutive useful sweeps; reaching `BUSY_STREAK` restores the
    // full spin ramp after a parked (doorbell-driven) phase.
    let mut streak: u32 = 0;
    // Whether the thread is in the doorbell-driven regime (short ramp):
    // entered after a park or when the duty-cycle window shows mostly
    // fruitless sweeps; left after a busy streak of useful ones.
    let mut parked_regime = false;
    // Duty-cycle window counters (see `DUTY_WINDOW`).
    let mut window_sweeps: u32 = 0;
    let mut window_useful: u32 = 0;
    // Devices already checked for doorbell subscription (registry index).
    let mut subscribed = 0usize;
    loop {
        // Upgrade per iteration: the parked/idle thread must not keep the
        // runtime alive, or user handles dropping could never tear it down.
        let Some(rt) = rt_weak.upgrade() else {
            break;
        };
        if rt.progress.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Epoch snapshot BEFORE the sweep: any ring that lands after this
        // read makes the park below return immediately (eventcount).
        let seen = bell.epoch();

        // Subscribe this thread's aggregate bell to newly created
        // devices in its partition. Subscribe-then-sweep ordering closes
        // the gap: work that rang the device bell before the
        // subscription is found by the sweep that follows.
        let ndev = rt.devices.len();
        while subscribed < ndev {
            if subscribed % nthreads == slot {
                if let Some(dev) = rt.devices.read(subscribed).and_then(|w| w.upgrade()) {
                    if let Some(dev_bell) = dev.net.doorbell() {
                        dev_bell.subscribe(bell.clone());
                    }
                }
            }
            subscribed += 1;
        }

        let mut did = false;
        let mut deferred = false;
        let mut fatal = false;
        let mut i = slot;
        while i < ndev {
            if let Some(inner) = rt.devices.read(i).and_then(|w| w.upgrade()) {
                let dev = Device { inner };
                dev.set_dedicated_active(true);
                match dev.progress() {
                    Ok(d) => did |= d,
                    Err(_) => {
                        // The engine has no error channel; die and let
                        // workers fall back to polling, where the same
                        // fatal error surfaces on their call stack.
                        fatal = true;
                    }
                }
                // Backlogged/coalesced/RNR-parked work needs more polls,
                // not another doorbell ring: never park on it.
                deferred |= dev.has_deferred_work();
            }
            i += nthreads;
        }
        if fatal {
            break;
        }
        window_sweeps += 1;
        if did {
            window_useful += 1;
        }
        if window_sweeps >= DUTY_WINDOW {
            if window_useful.saturating_mul(DUTY_DENOM) <= window_sweeps {
                // Trickle load: most sweeps find nothing, so stop
                // burning the core between arrivals — the doorbell
                // covers the wakeup.
                parked_regime = true;
            }
            window_sweeps = 0;
            window_useful = 0;
        }
        if did {
            idle = 0;
            streak = streak.saturating_add(1);
            if streak >= BUSY_STREAK {
                // Streaming phase: work arrives faster than sweeps
                // drain it. Earn back the full spin ramp.
                parked_regime = false;
            }
            // Wake workers blocked in `wait_until` on completions this
            // sweep may have signaled.
            rt.comp_bell.ring();
            drop(rt);
            continue;
        }
        streak = 0;
        idle = idle.saturating_add(1);
        let (spin_limit, park_limit) = if parked_regime {
            (PARKED_SPIN_ROUNDS, PARKED_IDLE_ROUNDS)
        } else {
            (SPIN_ROUNDS, IDLE_ROUNDS_BEFORE_PARK)
        };
        if idle < spin_limit {
            drop(rt);
            std::hint::spin_loop();
        } else if idle < park_limit || deferred {
            drop(rt);
            std::thread::yield_now();
        } else {
            // Park: mark the partition's devices stealable (Hybrid) and
            // count the park, then wait on the aggregate bell. The epoch
            // check inside `wait` (against the pre-sweep snapshot) makes
            // a wakeup between sweep and park impossible to lose.
            let mut i = slot;
            while i < ndev {
                if let Some(inner) = rt.devices.read(i).and_then(|w| w.upgrade()) {
                    let dev = Device { inner };
                    dev.set_dedicated_active(false);
                    dev.note_progress_park();
                }
                i += nthreads;
            }
            drop(rt);
            bell.wait(seen, PARK_TIMEOUT);
            // Doorbell-driven regime: re-park on the short ramp until a
            // busy streak proves a streaming phase is on.
            parked_regime = true;
            idle = PARKED_IDLE_ROUNDS;
        }
    }
    // Mark this thread gone so workers stop deferring to the engine.
    // (Saturating: `shutdown_and_join` may already have zeroed the count.)
    if let Some(rt) = rt_weak.upgrade() {
        let _ = rt
            .progress
            .active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
        // Unpark anyone blocked on completions: they must resume polling.
        rt.comp_bell.ring();
        let ndev = rt.devices.len();
        let mut i = slot;
        while i < ndev {
            if let Some(inner) = rt.devices.read(i).and_then(|w| w.upgrade()) {
                Device { inner }.set_dedicated_active(false);
            }
            i += nthreads;
        }
    }
}
