//! Sender-side message coalescing.
//!
//! Small eager messages bound for the same `(target rank, target
//! device)` are appended to a per-destination aggregation buffer instead
//! of being posted individually. A buffer ships as one
//! [`MsgType::Coalesced`](crate::proto::MsgType) frame when either
//! threshold is met (bytes or sub-message count), when a non-coalesced
//! message to the same destination must not overtake it, or when the
//! progress engine finds it idle. The receive side unpacks the frame and
//! feeds each sub-message — which carries its own full wire header —
//! through the normal matching/AM delivery paths, so matching semantics
//! and per-destination ordering are preserved. With
//! [`zero_copy_recv`](crate::RuntimeConfig::zero_copy_recv) (the
//! default) the sub-payloads are delivered as refcounted
//! [`PacketView`](crate::PacketView)s into the shared landing packet —
//! no per-sub-message allocation or copy on the demux path.
//!
//! This amortizes the dominant per-message costs of the paper's analysis
//! (§4.2): the endpoint/QP posting lock, the RX-ring slot, and the
//! packet+CQE on the receive side are paid once per frame instead of
//! once per message. The effect is largest on the `sim_ofi` backend,
//! whose single endpoint lock serializes every post against every poll.

use crate::proto::{coalesce_pack, COALESCE_SUB_OVERHEAD};
use crate::types::Rank;
use lci_fabric::sync::SpinLock;
use lci_fabric::{BufPool, DevId, PoolBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Coalescing configuration (a [`RuntimeConfig`](crate::RuntimeConfig)
/// field).
#[derive(Clone, Copy, Debug)]
pub struct CoalesceConfig {
    /// Master switch; when off, every send posts individually (the seed
    /// behaviour) and the other fields are ignored.
    pub enabled: bool,
    /// Flush a destination once its frame holds this many payload+header
    /// bytes. Must not exceed the packet payload size (frames are
    /// delivered into pre-posted packets).
    pub max_bytes: usize,
    /// Flush a destination once its frame holds this many sub-messages.
    pub max_msgs: usize,
    /// Only messages up to this size are coalesced; larger eager sends
    /// post individually.
    pub max_sub_size: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        Self { enabled: false, max_bytes: 8192, max_msgs: 64, max_sub_size: 1024 }
    }
}

impl CoalesceConfig {
    /// An enabled configuration flushing at `max_bytes` (the knob the
    /// ablation series sweeps).
    pub fn enabled_with_bytes(max_bytes: usize) -> Self {
        Self { enabled: true, max_bytes, ..Self::default() }
    }
}

/// A full frame taken out of the coalescer, ready to post. The frame
/// buffer is pool-recycled: dropping it after the post returns the
/// storage for the destination's next frame.
pub(crate) struct Frame {
    pub target: Rank,
    pub target_dev: DevId,
    pub data: PoolBuf,
    /// Sub-messages in the frame (carried in the frame header's aux
    /// field for receive-side validation).
    pub count: usize,
}

/// One destination's open frame.
struct Slot {
    dev: DevId,
    data: PoolBuf,
    count: usize,
    /// Epoch of the last append (for idle detection).
    epoch: u64,
}

/// Per-device aggregation state: one slot list per target rank (the
/// inner list is keyed by target device and is almost always length 1).
pub(crate) struct Coalescer {
    cfg: CoalesceConfig,
    slots: Vec<SpinLock<Vec<Slot>>>,
    /// Recycled storage for frame buffers (the owning device's pool).
    pool: BufPool,
    /// Total buffered sub-messages — the progress/quiesce fast path.
    pending: AtomicUsize,
    /// Bumped by each idle sweep; slots untouched for a full epoch flush.
    epoch: AtomicU64,
}

impl Coalescer {
    pub fn new(cfg: CoalesceConfig, nranks: usize, pool: BufPool) -> Self {
        Self {
            cfg,
            slots: (0..nranks).map(|_| SpinLock::new(Vec::new())).collect(),
            pool,
            pending: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Whether a message of `size` bytes takes the coalescing path.
    pub fn eligible(&self, size: usize) -> bool {
        self.cfg.enabled
            && size <= self.cfg.max_sub_size
            && size + COALESCE_SUB_OVERHEAD <= self.cfg.max_bytes
    }

    /// Buffered sub-messages not yet on the wire.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Appends one sub-message for `(target, dev)`, handing any frame
    /// that became due to `post`: the previous frame when this append
    /// would have overflowed `max_bytes`, and/or the current frame when
    /// it reached a threshold (almost always 0 or 1 frames).
    ///
    /// `post` runs while the destination's slot lock is held: frames for
    /// one destination reach the wire in creation order even when
    /// several threads append concurrently (per-destination frame FIFO,
    /// which the flush-before-non-coalescable ordering rule relies on).
    pub fn append_with<E>(
        &self,
        target: Rank,
        dev: DevId,
        sub_imm: u64,
        payload: &[u8],
        mut post: impl FnMut(Frame) -> Result<(), E>,
    ) -> Result<(), E> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut slots = self.slots[target].lock();
        let slot = match slots.iter_mut().find(|s| s.dev == dev) {
            Some(s) => s,
            None => {
                slots.push(Slot {
                    dev,
                    data: self.pool.take_empty(self.cfg.max_bytes),
                    count: 0,
                    epoch,
                });
                slots.last_mut().unwrap()
            }
        };
        if !slot.data.is_empty()
            && slot.data.len() + COALESCE_SUB_OVERHEAD + payload.len() > self.cfg.max_bytes
        {
            let frame = self.take_slot(target, slot);
            post(frame)?;
        }
        coalesce_pack(slot.data.vec_mut(), sub_imm, payload);
        slot.count += 1;
        slot.epoch = epoch;
        self.pending.fetch_add(1, Ordering::AcqRel);
        if slot.count >= self.cfg.max_msgs || slot.data.len() >= self.cfg.max_bytes {
            let frame = self.take_slot(target, slot);
            post(frame)?;
        }
        Ok(())
    }

    /// Flushes the open frame for `(target, dev)`, if any — the ordering
    /// flush before a non-coalesced message to the same destination.
    /// `post` runs under the slot lock (see [`Self::append_with`]).
    pub fn take_with<E>(
        &self,
        target: Rank,
        dev: DevId,
        mut post: impl FnMut(Frame) -> Result<(), E>,
    ) -> Result<(), E> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return Ok(());
        }
        let mut slots = self.slots[target].lock();
        if let Some(slot) = slots.iter_mut().find(|s| s.dev == dev && !s.data.is_empty()) {
            let frame = self.take_slot(target, slot);
            post(frame)?;
        }
        Ok(())
    }

    /// Flushes every frame untouched since the previous sweep (called
    /// from the progress engine). A destination being actively appended
    /// to survives one sweep; quiescent ones flush with a latency of at
    /// most two progress calls. `post` runs under the owning slot lock.
    pub fn take_idle_with<E>(&self, mut post: impl FnMut(Frame) -> Result<(), E>) -> Result<(), E> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return Ok(());
        }
        let now = self.epoch.fetch_add(1, Ordering::Relaxed);
        for (target, slots) in self.slots.iter().enumerate() {
            let mut slots = slots.lock();
            for slot in slots.iter_mut() {
                if !slot.data.is_empty() && slot.epoch < now {
                    let frame = self.take_slot(target, slot);
                    post(frame)?;
                }
            }
        }
        Ok(())
    }

    /// Flushes every open frame (explicit flush). `post` runs under the
    /// owning slot lock.
    pub fn take_all_with<E>(&self, mut post: impl FnMut(Frame) -> Result<(), E>) -> Result<(), E> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return Ok(());
        }
        for (target, slots) in self.slots.iter().enumerate() {
            let mut slots = slots.lock();
            for slot in slots.iter_mut() {
                if !slot.data.is_empty() {
                    let frame = self.take_slot(target, slot);
                    post(frame)?;
                }
            }
        }
        Ok(())
    }

    fn take_slot(&self, target: Rank, slot: &mut Slot) -> Frame {
        // Restock the slot from the pool: in the steady state the frame
        // just posted (and dropped) is the buffer handed back here.
        let frame = Frame {
            target,
            target_dev: slot.dev,
            data: std::mem::replace(&mut slot.data, self.pool.take_empty(self.cfg.max_bytes)),
            count: slot.count,
        };
        self.pending.fetch_sub(slot.count, Ordering::AcqRel);
        slot.count = 0;
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::coalesce_unpack;

    fn cfg(max_bytes: usize, max_msgs: usize) -> CoalesceConfig {
        CoalesceConfig { enabled: true, max_bytes, max_msgs, max_sub_size: 256 }
    }

    fn mk(cfg: CoalesceConfig, nranks: usize) -> Coalescer {
        Coalescer::new(cfg, nranks, BufPool::new(lci_fabric::BufPoolConfig::default()))
    }

    /// Test driver: collect flushed frames instead of posting them.
    fn append(c: &Coalescer, target: Rank, dev: DevId, imm: u64, payload: &[u8]) -> Vec<Frame> {
        let mut out = Vec::new();
        c.append_with::<()>(target, dev, imm, payload, |f| {
            out.push(f);
            Ok(())
        })
        .unwrap();
        out
    }

    fn take(c: &Coalescer, target: Rank, dev: DevId) -> Option<Frame> {
        let mut out = None;
        c.take_with::<()>(target, dev, |f| {
            out = Some(f);
            Ok(())
        })
        .unwrap();
        out
    }

    fn take_idle(c: &Coalescer) -> Vec<Frame> {
        let mut out = Vec::new();
        c.take_idle_with::<()>(|f| {
            out.push(f);
            Ok(())
        })
        .unwrap();
        out
    }

    fn take_all(c: &Coalescer) -> Vec<Frame> {
        let mut out = Vec::new();
        c.take_all_with::<()>(|f| {
            out.push(f);
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn count_threshold_flushes() {
        let c = mk(cfg(1 << 20, 3), 2);
        assert!(append(&c, 1, 0, 10, b"a").is_empty());
        assert!(append(&c, 1, 0, 11, b"b").is_empty());
        assert_eq!(c.pending(), 2);
        let frames = append(&c, 1, 0, 12, b"c");
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].count, 3);
        assert_eq!(c.pending(), 0);
        let subs = coalesce_unpack(&frames[0].data).unwrap();
        assert_eq!(subs, vec![(10, b"a".as_slice()), (11, b"b".as_slice()), (12, b"c".as_slice())]);
    }

    #[test]
    fn byte_threshold_flushes_before_overflow() {
        // max_bytes 64: two 20-byte subs fit (2 * 32 = 64 >= threshold →
        // flush after second); a third would overflow first.
        let c = mk(cfg(64, 1000), 1);
        assert!(append(&c, 0, 0, 1, &[0u8; 20]).is_empty());
        let frames = append(&c, 0, 0, 2, &[1u8; 20]);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].data.len() <= 64);
        assert_eq!(frames[0].count, 2);
    }

    #[test]
    fn per_destination_isolation_and_take() {
        let c = mk(cfg(1 << 20, 1000), 3);
        append(&c, 1, 0, 1, b"x");
        append(&c, 2, 0, 2, b"y");
        append(&c, 2, 1, 3, b"z");
        assert_eq!(c.pending(), 3);
        assert!(take(&c, 0, 0).is_none());
        let f = take(&c, 2, 1).unwrap();
        assert_eq!((f.target, f.target_dev, f.count), (2, 1, 1));
        assert_eq!(c.pending(), 2);
        assert_eq!(take_all(&c).len(), 2);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn idle_sweep_gives_one_epoch_grace() {
        let c = mk(cfg(1 << 20, 1000), 1);
        append(&c, 0, 0, 1, b"x");
        // First sweep: appended during the current epoch — survives.
        assert!(take_idle(&c).is_empty());
        // Second sweep: untouched for a full epoch — flushes.
        let frames = take_idle(&c);
        assert_eq!(frames.len(), 1);
        assert_eq!(c.pending(), 0);
        assert!(take_idle(&c).is_empty());
    }

    #[test]
    fn eligibility() {
        let c = mk(cfg(64, 8), 1);
        assert!(c.eligible(0));
        assert!(c.eligible(52)); // 52 + 12 == 64
        assert!(!c.eligible(53)); // would exceed max_bytes alone
        assert!(!c.eligible(257)); // over max_sub_size
        let off = mk(CoalesceConfig::default(), 1);
        assert!(!off.enabled());
        assert!(!off.eligible(1));
    }
}
