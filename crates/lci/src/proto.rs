//! Communication protocols (paper §4.3) and wire-header encoding.
//!
//! For send-receive and active-message operations, LCI chooses among
//! three protocols by message size:
//!
//! * **inject** — tiny payloads ride inline in the wire slot;
//! * **buffer-copy (bcopy)** — eager payloads are staged through the
//!   fabric and delivered into a pre-posted packet;
//! * **zero-copy (zcopy)** — a rendezvous: the source sends an RTS
//!   (ready-to-send), the target registers its buffer and answers RTR
//!   (ready-to-receive) carrying an rkey, and the source RDMA-writes the
//!   payload with an immediate FIN that completes the target side.
//!
//! Put/get translate directly to the low-level RDMA operations. The
//! original paper does not implement *get with signal* because its
//! interconnects lack RDMA-read-with-notification; this reproduction's
//! fabric can express it (an explicit notification message after the
//! read), so the operation is supported — a documented extension.
//!
//! ## Header layout (64-bit immediate)
//!
//! ```text
//! 63..60  message type (MsgType)
//! 59..58  matching policy (2 bits)
//! 57..56  reserved
//! 55..24  tag (32 bits)
//! 23..0   aux: rcomp (AM / signals) or rendezvous id (FIN)
//! ```

use crate::error::{FatalError, Result};
use crate::types::{MatchingPolicy, Tag};

/// Wire message types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgType {
    /// Eager two-sided send (matched by the matching engine).
    Eager = 1,
    /// Eager active message (aux = rcomp).
    EagerAm = 2,
    /// Rendezvous ready-to-send for send-recv (payload: RtsPayload).
    RtsSr = 3,
    /// Rendezvous ready-to-send for active messages (aux = rcomp).
    RtsAm = 4,
    /// Rendezvous ready-to-receive (payload: RtrPayload).
    Rtr = 5,
    /// Rendezvous finish, delivered as RDMA-write immediate
    /// (aux = rendezvous receive id).
    Fin = 6,
    /// Put-with-signal notification, delivered as RDMA-write immediate
    /// (aux = rcomp).
    PutSignal = 7,
    /// Get-with-signal notification, delivered as an eager control
    /// message after the read completes (aux = rcomp).
    GetSignal = 8,
    /// A coalesced frame: several small eager messages (sends or AMs)
    /// packed into one wire message (aux = sub-message count). The
    /// payload is a sequence of [`coalesce_pack`] records.
    Coalesced = 9,
}

impl MsgType {
    fn from_bits(v: u64) -> Result<MsgType> {
        Ok(match v {
            1 => MsgType::Eager,
            2 => MsgType::EagerAm,
            3 => MsgType::RtsSr,
            4 => MsgType::RtsAm,
            5 => MsgType::Rtr,
            6 => MsgType::Fin,
            7 => MsgType::PutSignal,
            8 => MsgType::GetSignal,
            9 => MsgType::Coalesced,
            other => {
                return Err(FatalError::Net(format!("corrupt wire header type {other}")));
            }
        })
    }
}

/// Decoded wire header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Message type.
    pub ty: MsgType,
    /// Matching policy the sender used (eager / RTS messages).
    pub policy: MatchingPolicy,
    /// Message tag.
    pub tag: Tag,
    /// Auxiliary 24-bit field (rcomp or rendezvous id).
    pub aux: u32,
}

impl Header {
    /// Builds a header.
    pub fn new(ty: MsgType, policy: MatchingPolicy, tag: Tag, aux: u32) -> Self {
        debug_assert!(aux < (1 << 24), "aux field overflow");
        Self { ty, policy, tag, aux }
    }

    /// Encodes to the 64-bit immediate.
    pub fn encode(self) -> u64 {
        ((self.ty as u64) << 60)
            | ((self.policy.encode() as u64) << 58)
            | ((self.tag as u64) << 24)
            | (self.aux as u64 & 0xFF_FFFF)
    }

    /// Decodes from the 64-bit immediate.
    pub fn decode(imm: u64) -> Result<Self> {
        Ok(Self {
            ty: MsgType::from_bits((imm >> 60) & 0xF)?,
            policy: MatchingPolicy::decode(((imm >> 58) & 0b11) as u8),
            tag: ((imm >> 24) & 0xFFFF_FFFF) as Tag,
            aux: (imm & 0xFF_FFFF) as u32,
        })
    }
}

/// RTS control payload: identifies the pending send and its size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtsPayload {
    /// Sender-side rendezvous id.
    pub send_id: u32,
    /// Full message size in bytes.
    pub size: u64,
}

impl RtsPayload {
    /// Serialized size.
    pub const BYTES: usize = 12;

    /// Serializes to bytes.
    pub fn encode(self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        out[..4].copy_from_slice(&self.send_id.to_le_bytes());
        out[4..].copy_from_slice(&self.size.to_le_bytes());
        out
    }

    /// Deserializes from bytes.
    pub fn decode(b: &[u8]) -> Result<Self> {
        if b.len() < Self::BYTES {
            return Err(FatalError::Net("short RTS payload".into()));
        }
        Ok(Self {
            send_id: u32::from_le_bytes(b[..4].try_into().unwrap()),
            size: u64::from_le_bytes(b[4..12].try_into().unwrap()),
        })
    }
}

/// RTR control payload: tells the source where to write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtrPayload {
    /// Sender-side rendezvous id (echoed from the RTS).
    pub send_id: u32,
    /// Receiver-side rendezvous id (returned in the FIN immediate).
    pub recv_id: u32,
    /// Remote key of the registered target buffer.
    pub rkey: u32,
}

impl RtrPayload {
    /// Serialized size.
    pub const BYTES: usize = 12;

    /// Serializes to bytes.
    pub fn encode(self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        out[..4].copy_from_slice(&self.send_id.to_le_bytes());
        out[4..8].copy_from_slice(&self.recv_id.to_le_bytes());
        out[8..].copy_from_slice(&self.rkey.to_le_bytes());
        out
    }

    /// Deserializes from bytes.
    pub fn decode(b: &[u8]) -> Result<Self> {
        if b.len() < Self::BYTES {
            return Err(FatalError::Net("short RTR payload".into()));
        }
        Ok(Self {
            send_id: u32::from_le_bytes(b[..4].try_into().unwrap()),
            recv_id: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            rkey: u32::from_le_bytes(b[8..12].try_into().unwrap()),
        })
    }
}

/// Per-sub-message overhead of the coalesced frame format: the
/// sub-message's own 64-bit wire header plus a 32-bit length prefix.
pub const COALESCE_SUB_OVERHEAD: usize = 12;

/// Appends one sub-message record to a coalesced frame:
/// `[sub_imm: u64 LE][len: u32 LE][payload]`. Each sub-message carries
/// the full wire header (type, matching policy, tag, aux) it would have
/// carried as a standalone eager message.
pub fn coalesce_pack(frame: &mut Vec<u8>, sub_imm: u64, payload: &[u8]) {
    frame.reserve(COALESCE_SUB_OVERHEAD + payload.len());
    frame.extend_from_slice(&sub_imm.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
}

/// Splits a coalesced frame into `(sub_imm, payload range)` records
/// without borrowing the payload bytes — the zero-copy demux path uses
/// the ranges to carve [`crate::PacketView`]s out of the backing packet.
/// Validation is identical to [`coalesce_unpack`]: truncated records,
/// trailing garbage and empty frames are rejected.
pub fn coalesce_unpack_ranges(frame: &[u8]) -> Result<Vec<(u64, std::ops::Range<usize>)>> {
    if frame.is_empty() {
        return Err(FatalError::Net("empty coalesced frame".into()));
    }
    let mut subs = Vec::new();
    let mut at = 0usize;
    while at < frame.len() {
        if frame.len() - at < COALESCE_SUB_OVERHEAD {
            return Err(FatalError::Net("truncated coalesced sub-header".into()));
        }
        let sub_imm = u64::from_le_bytes(frame[at..at + 8].try_into().unwrap());
        let len = u32::from_le_bytes(frame[at + 8..at + 12].try_into().unwrap()) as usize;
        at += COALESCE_SUB_OVERHEAD;
        if frame.len() - at < len {
            return Err(FatalError::Net(format!(
                "truncated coalesced payload: {} < {len}",
                frame.len() - at
            )));
        }
        subs.push((sub_imm, at..at + len));
        at += len;
    }
    Ok(subs)
}

/// Splits a coalesced frame back into `(sub_imm, payload)` records.
/// Rejects truncated records and trailing garbage; an empty frame is
/// rejected too (the sender never ships one).
pub fn coalesce_unpack(frame: &[u8]) -> Result<Vec<(u64, &[u8])>> {
    Ok(coalesce_unpack_ranges(frame)?
        .into_iter()
        .map(|(sub_imm, r)| (sub_imm, &frame[r]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_all_types() {
        for ty in [
            MsgType::Eager,
            MsgType::EagerAm,
            MsgType::RtsSr,
            MsgType::RtsAm,
            MsgType::Rtr,
            MsgType::Fin,
            MsgType::PutSignal,
            MsgType::GetSignal,
            MsgType::Coalesced,
        ] {
            let h = Header::new(ty, MatchingPolicy::TagOnly, 0xDEAD_BEEF, 0x12_3456);
            let d = Header::decode(h.encode()).unwrap();
            assert_eq!(h, d);
        }
    }

    #[test]
    fn header_extreme_values() {
        let h = Header::new(MsgType::Eager, MatchingPolicy::None, u32::MAX, (1 << 24) - 1);
        let d = Header::decode(h.encode()).unwrap();
        assert_eq!(d.tag, u32::MAX);
        assert_eq!(d.aux, (1 << 24) - 1);
        assert_eq!(d.policy, MatchingPolicy::None);
    }

    #[test]
    fn header_rejects_corrupt_type() {
        assert!(Header::decode(0).is_err());
        assert!(Header::decode(0xF << 60).is_err());
    }

    #[test]
    fn coalesce_roundtrip_and_truncation() {
        let mut frame = Vec::new();
        coalesce_pack(&mut frame, 111, b"hello");
        coalesce_pack(&mut frame, 222, b"");
        coalesce_pack(&mut frame, 333, &[7u8; 100]);
        let subs = coalesce_unpack(&frame).unwrap();
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0], (111, b"hello".as_slice()));
        assert_eq!(subs[1], (222, b"".as_slice()));
        assert_eq!(subs[2], (333, [7u8; 100].as_slice()));

        assert!(coalesce_unpack(&[]).is_err());
        // Cut inside the last record's payload and inside its header.
        assert!(coalesce_unpack(&frame[..frame.len() - 1]).is_err());
        assert!(coalesce_unpack(&frame[..frame.len() - 105]).is_err());

        // The range-based splitter agrees with the borrowing one.
        let ranges = coalesce_unpack_ranges(&frame).unwrap();
        assert_eq!(ranges.len(), subs.len());
        for ((imm_a, payload), (imm_b, r)) in subs.iter().zip(&ranges) {
            assert_eq!(imm_a, imm_b);
            assert_eq!(*payload, &frame[r.clone()]);
        }
        assert!(coalesce_unpack_ranges(&[]).is_err());
        assert!(coalesce_unpack_ranges(&frame[..frame.len() - 1]).is_err());
    }

    #[test]
    fn rts_rtr_roundtrip() {
        let rts = RtsPayload { send_id: 7, size: 1 << 40 };
        assert_eq!(RtsPayload::decode(&rts.encode()).unwrap(), rts);
        let rtr = RtrPayload { send_id: 7, recv_id: 9, rkey: 1234 };
        assert_eq!(RtrPayload::decode(&rtr.encode()).unwrap(), rtr);
        assert!(RtsPayload::decode(&[0u8; 4]).is_err());
        assert!(RtrPayload::decode(&[0u8; 4]).is_err());
    }
}
