//! Small internal utilities.

use lci_fabric::sync::SpinLock;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A slab of pending-operation descriptors with id reuse. Ids stay small
/// (free-list reuse) so they fit in the 24-bit aux field of the wire
/// header (rendezvous FIN addressing).
#[allow(dead_code)]
pub(crate) struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

#[allow(dead_code)]
impl<T> Slab<T> {
    pub fn new() -> Self {
        Self { entries: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Inserts a value, returning its id.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(id) = self.free.pop() {
            self.entries[id as usize] = Some(value);
            id
        } else {
            self.entries.push(Some(value));
            (self.entries.len() - 1) as u32
        }
    }

    /// Removes and returns the value with `id`.
    pub fn remove(&mut self, id: u32) -> Option<T> {
        let v = self.entries.get_mut(id as usize)?.take();
        if v.is_some() {
            self.free.push(id);
            self.len -= 1;
        }
        v
    }

    /// Borrows the value with `id`.
    pub fn get(&self, id: u32) -> Option<&T> {
        self.entries.get(id as usize)?.as_ref()
    }

    /// Mutably borrows the value with `id`.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.entries.get_mut(id as usize)?.as_mut()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A sharded, internally locked slab: `N` independent `SpinLock<Slab>`
/// stripes with round-robin id allocation, so concurrent inserts and
/// removals mostly touch different locks (shard = `id % N`, inner id =
/// `id / N`). Free-list reuse inside each stripe keeps combined ids
/// small enough for the 24-bit wire-header aux field.
pub(crate) struct ShardedSlab<T> {
    shards: Box<[SpinLock<Slab<T>>]>,
    next: AtomicUsize,
}

impl<T> ShardedSlab<T> {
    pub fn new(nshards: usize) -> Self {
        let n = nshards.max(1);
        Self {
            shards: (0..n).map(|_| SpinLock::new(Slab::new())).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Inserts a value into the next shard (round-robin), returning its
    /// combined id.
    ///
    /// Combined ids ride in the 24-bit aux field of the wire header, so
    /// the slab addresses at most `2^24 / nshards` concurrently live
    /// entries per shard; an insert past that bound would alias ids on
    /// the wire and is a debug-time panic.
    pub fn insert(&self, value: T) -> u32 {
        let n = self.shards.len() as u32;
        let shard = (self.next.fetch_add(1, Ordering::Relaxed) as u32) % n;
        let inner = self.shards[shard as usize].lock().insert(value);
        let id = inner * n + shard;
        debug_assert!(
            id < (1 << 24),
            "sharded-slab id {id} overflows the 24-bit wire aux field ({n} shards)"
        );
        id
    }

    /// Removes and returns the value with combined id `id`.
    pub fn remove(&self, id: u32) -> Option<T> {
        let n = self.shards.len() as u32;
        self.shards[(id % n) as usize].lock().remove(id / n)
    }

    /// Total live entries, summed shard by shard. Advisory: each shard is
    /// locked in turn, so the sum is a consistent per-shard snapshot but
    /// not an atomic view across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuse() {
        let mut s: Slab<&str> = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None, "double remove is None");
        let c = s.insert("c");
        assert_eq!(c, a, "freed id is reused");
        assert_eq!(s.get(c), Some(&"c"));
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn get_mut_updates() {
        let mut s: Slab<u32> = Slab::new();
        let id = s.insert(1);
        *s.get_mut(id).unwrap() = 9;
        assert_eq!(s.get(id), Some(&9));
    }

    #[test]
    fn unknown_ids() {
        let mut s: Slab<u8> = Slab::new();
        assert!(s.get(3).is_none());
        assert!(s.remove(3).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn sharded_round_trip() {
        let s: ShardedSlab<u32> = ShardedSlab::new(4);
        let ids: Vec<u32> = (0..32).map(|v| s.insert(v)).collect();
        assert_eq!(s.len(), 32);
        // Round-robin allocation spreads consecutive inserts over shards.
        assert_ne!(ids[0] % 4, ids[1] % 4);
        for (v, id) in ids.iter().enumerate() {
            assert_eq!(s.remove(*id), Some(v as u32));
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.remove(ids[0]), None, "double remove is None");
    }

    #[test]
    fn sharded_ids_stay_small() {
        let s: ShardedSlab<usize> = ShardedSlab::new(8);
        // Churn: ids must be reused via per-shard free lists.
        let mut max_id = 0;
        for round in 0..100 {
            let ids: Vec<u32> = (0..16).map(|v| s.insert(round * 16 + v)).collect();
            max_id = max_id.max(*ids.iter().max().unwrap());
            for id in ids {
                s.remove(id).unwrap();
            }
        }
        assert!(max_id < 16 * 8, "ids are reused, not monotonically grown: {max_id}");
    }

    #[test]
    fn sharded_concurrent_churn() {
        let s = std::sync::Arc::new(ShardedSlab::<u64>::new(4));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let v = (t as u64) << 32 | i;
                        let id = s.insert(v);
                        assert_eq!(s.remove(id), Some(v));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.len(), 0);
    }
}
