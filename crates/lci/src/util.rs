//! Small internal utilities.

/// A slab of pending-operation descriptors with id reuse. Ids stay small
/// (free-list reuse) so they fit in the 24-bit aux field of the wire
/// header (rendezvous FIN addressing).
#[allow(dead_code)]
pub(crate) struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

#[allow(dead_code)]
impl<T> Slab<T> {
    pub fn new() -> Self {
        Self { entries: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Inserts a value, returning its id.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(id) = self.free.pop() {
            self.entries[id as usize] = Some(value);
            id
        } else {
            self.entries.push(Some(value));
            (self.entries.len() - 1) as u32
        }
    }

    /// Removes and returns the value with `id`.
    pub fn remove(&mut self, id: u32) -> Option<T> {
        let v = self.entries.get_mut(id as usize)?.take();
        if v.is_some() {
            self.free.push(id);
            self.len -= 1;
        }
        v
    }

    /// Borrows the value with `id`.
    pub fn get(&self, id: u32) -> Option<&T> {
        self.entries.get(id as usize)?.as_ref()
    }

    /// Mutably borrows the value with `id`.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.entries.get_mut(id as usize)?.as_mut()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuse() {
        let mut s: Slab<&str> = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None, "double remove is None");
        let c = s.insert("c");
        assert_eq!(c, a, "freed id is reused");
        assert_eq!(s.get(c), Some(&"c"));
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn get_mut_updates() {
        let mut s: Slab<u32> = Slab::new();
        let id = s.insert(1);
        *s.get_mut(id).unwrap() = 9;
        assert_eq!(s.get(id), Some(&9));
    }

    #[test]
    fn unknown_ids() {
        let mut s: Slab<u8> = Slab::new();
        assert!(s.get(3).is_none());
        assert!(s.remove(3).is_none());
        assert!(s.is_empty());
    }
}
