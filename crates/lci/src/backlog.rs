//! The backlog queue (paper §4.1.5): stores communication requests that
//! can neither be submitted right now nor back-propagated to the user —
//! typically control messages the progress engine must send (RTR, FIN
//! writes, signals) when the network send queue is full.
//!
//! Such situations are expected to be rare, so this is a plain queue with
//! a spinlock; an atomic flag saves the progress engine from polling an
//! empty backlog.

use crate::device::RdvActive;
use crate::types::Rank;
use lci_fabric::sync::SpinLock;
use lci_fabric::{DevId, PoolBuf};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A postponed request. Payloads are pool-recycled buffers: parking a
/// message never costs a fresh allocation, and shipping it returns the
/// staging storage to the device's buffer pool.
pub(crate) enum Backlogged {
    /// An eager control/data message to (rank, dev): payload + header.
    Ctrl { target: Rank, target_dev: DevId, payload: PoolBuf, imm: u64 },
    /// A stalled pipelined rendezvous transfer: the chunk pump hit a full
    /// wire with nothing in flight to re-drive it.
    RdvPump { active: Arc<RdvActive> },
    /// A user-level eager send whose retry was disallowed at post time.
    /// The flattened payload rides here; the in-flight operation context
    /// (buffer + completion) rides in `ctx`.
    UserSend { target: Rank, target_dev: DevId, data: PoolBuf, imm: u64, ctx: u64 },
}

/// The batching key of a plain send, or `None` for requests that must
/// post individually (rendezvous chunk pumps).
fn send_dest(item: &Backlogged) -> Option<(Rank, DevId)> {
    match item {
        Backlogged::Ctrl { target, target_dev, .. }
        | Backlogged::UserSend { target, target_dev, .. } => Some((*target, *target_dev)),
        Backlogged::RdvPump { .. } => None,
    }
}

/// The backlog queue resource.
pub(crate) struct Backlog {
    queue: SpinLock<VecDeque<Backlogged>>,
    nonempty: AtomicBool,
}

impl Backlog {
    pub fn new() -> Self {
        Self { queue: SpinLock::new(VecDeque::new()), nonempty: AtomicBool::new(false) }
    }

    /// Enqueues a postponed request.
    pub fn push(&self, item: Backlogged) {
        let mut q = self.queue.lock();
        q.push_back(item);
        self.nonempty.store(true, Ordering::Release);
    }

    /// Re-inserts a request at the front (it must retry before anything
    /// queued behind it to preserve rendezvous pairing fairness).
    pub fn push_front(&self, item: Backlogged) {
        let mut q = self.queue.lock();
        q.push_front(item);
        self.nonempty.store(true, Ordering::Release);
    }

    /// Dequeues the oldest request, if any. The fast path is a single
    /// atomic load when the backlog is empty. (The progress engine
    /// drains through [`pop_run`](Backlog::pop_run); this stays as the
    /// single-item primitive for tests.)
    #[cfg(test)]
    pub fn pop(&self) -> Option<Backlogged> {
        if !self.nonempty.load(Ordering::Acquire) {
            return None;
        }
        let mut q = self.queue.lock();
        let item = q.pop_front();
        if q.is_empty() {
            self.nonempty.store(false, Ordering::Release);
        }
        item
    }

    /// Dequeues a *run*: the oldest request plus — when it is a plain
    /// send (`Ctrl`/`UserSend`) — up to `max - 1` consecutive plain
    /// sends to the same `(target, target_dev)`. Only a contiguous
    /// front run is taken, so FIFO order is preserved; the run feeds one
    /// batched fabric submission (one posting-lock acquisition).
    pub fn pop_run(&self, max: usize) -> Vec<Backlogged> {
        if !self.nonempty.load(Ordering::Acquire) {
            return Vec::new();
        }
        let mut q = self.queue.lock();
        let mut run = Vec::new();
        let Some(first) = q.pop_front() else {
            self.nonempty.store(false, Ordering::Release);
            return run;
        };
        let key = send_dest(&first);
        run.push(first);
        if key.is_some() {
            while run.len() < max && q.front().is_some_and(|i| send_dest(i) == key) {
                run.push(q.pop_front().unwrap());
            }
        }
        if q.is_empty() {
            self.nonempty.store(false, Ordering::Release);
        }
        run
    }

    /// Re-parks unposted requests at the front, preserving their order.
    pub fn push_front_run(&self, items: impl DoubleEndedIterator<Item = Backlogged>) {
        let mut q = self.queue.lock();
        for item in items.rev() {
            q.push_front(item);
        }
        if !q.is_empty() {
            self.nonempty.store(true, Ordering::Release);
        }
    }

    /// Approximate number of postponed requests.
    pub fn len(&self) -> usize {
        if !self.nonempty.load(Ordering::Acquire) {
            return 0;
        }
        self.queue.lock().len()
    }

    /// Whether the backlog appears empty (single atomic load).
    pub fn is_empty(&self) -> bool {
        !self.nonempty.load(Ordering::Acquire)
    }
}

impl Default for Backlog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(tag: u64) -> Backlogged {
        Backlogged::Ctrl { target: 0, target_dev: 0, payload: vec![].into(), imm: tag }
    }

    fn imm_of(b: &Backlogged) -> u64 {
        match b {
            Backlogged::Ctrl { imm, .. } => *imm,
            Backlogged::UserSend { imm, .. } => *imm,
            Backlogged::RdvPump { .. } => u64::MAX,
        }
    }

    #[test]
    fn fifo_order() {
        let b = Backlog::new();
        assert!(b.is_empty());
        b.push(ctrl(1));
        b.push(ctrl(2));
        assert_eq!(b.len(), 2);
        assert_eq!(imm_of(&b.pop().unwrap()), 1);
        assert_eq!(imm_of(&b.pop().unwrap()), 2);
        assert!(b.pop().is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn push_front_retries_first() {
        let b = Backlog::new();
        b.push(ctrl(1));
        let first = b.pop().unwrap();
        b.push(ctrl(2));
        b.push_front(first);
        assert_eq!(imm_of(&b.pop().unwrap()), 1);
        assert_eq!(imm_of(&b.pop().unwrap()), 2);
    }

    #[test]
    fn pop_run_groups_same_destination_sends() {
        let b = Backlog::new();
        b.push(Backlogged::Ctrl { target: 1, target_dev: 0, payload: vec![].into(), imm: 1 });
        b.push(Backlogged::UserSend {
            target: 1,
            target_dev: 0,
            data: vec![].into(),
            imm: 2,
            ctx: 0,
        });
        b.push(Backlogged::Ctrl { target: 2, target_dev: 0, payload: vec![].into(), imm: 3 });
        let run = b.pop_run(16);
        assert_eq!(run.iter().map(imm_of).collect::<Vec<_>>(), vec![1, 2]);
        let run = b.pop_run(16);
        assert_eq!(run.iter().map(imm_of).collect::<Vec<_>>(), vec![3]);
        assert!(b.pop_run(16).is_empty());
        assert!(b.is_empty());
    }

    #[test]
    fn pop_run_never_groups_rdv_pumps() {
        let b = Backlog::new();
        let rdv = || Backlogged::RdvPump { active: Arc::new(RdvActive::test_stub()) };
        b.push(rdv());
        b.push(rdv());
        assert_eq!(b.pop_run(16).len(), 1);
        assert_eq!(b.pop_run(16).len(), 1);
    }

    #[test]
    fn push_front_run_preserves_order() {
        let b = Backlog::new();
        b.push(ctrl(3));
        b.push_front_run(vec![ctrl(1), ctrl(2)].into_iter());
        assert_eq!(imm_of(&b.pop().unwrap()), 1);
        assert_eq!(imm_of(&b.pop().unwrap()), 2);
        assert_eq!(imm_of(&b.pop().unwrap()), 3);
    }

    #[test]
    fn empty_fast_path() {
        let b = Backlog::new();
        // pop on empty must not take the lock (observable only as: it
        // returns None and is cheap; we just check correctness here).
        for _ in 0..1000 {
            assert!(b.pop().is_none());
        }
    }
}
