//! The packet pool (paper §4.1.2): efficient allocation (`get`) and
//! deallocation (`put`) of fixed-sized pre-registered buffers ("packets").
//!
//! Implemented as a collection of **per-core** double-ended queues
//! (§4.1.1, laid out over the [`topology`](lci_fabric::topology) core
//! map). Every thread puts/gets packets at the *tail* of its home
//! core's deque; when that deque is empty the thread steals half of the
//! packets of a randomly selected victim core from the *head* end —
//! tail for locality, head for stealing, exactly the paper's layout.
//! Thread safety comes from a per-stripe leaf spinlock: in the
//! thread-per-core regime the owner is the only visitor, so the
//! steady-state get/put path never bounces a shared head pointer
//! between cores. Threads sharing a core (oversubscription) share a
//! stripe — they contend on the leaf lock but stay core-local.
//!
//! `get` is non-blocking: when the first stealing attempt round fails it
//! returns `None`, which the posting path surfaces as the `retry`
//! status with reason `NoPacket`.

use crate::error::{FatalError, Result};
use lci_fabric::sync::{MpmcArray, SpinLock};
use lci_fabric::topology::{self, CachePadded};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Packets per allocation chunk.
const CHUNK_PACKETS: usize = 64;

/// One raw memory chunk holding `CHUNK_PACKETS` packets.
struct Chunk {
    base: *mut u8,
    layout: std::alloc::Layout,
}

// SAFETY: the chunk's memory is only accessed through packets, each of
// which has exclusive ownership of its slot.
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

impl Drop for Chunk {
    fn drop(&mut self) {
        // SAFETY: allocated with this layout in `PoolShared::add_chunk`.
        unsafe { std::alloc::dealloc(self.base, self.layout) }
    }
}

struct PoolShared {
    payload_size: usize,
    capacity: usize,
    /// Chunk base addresses for lock-free idx->ptr translation.
    chunk_bases: MpmcArray<usize>,
    /// Chunk owners (kept for deallocation).
    chunks: SpinLock<Vec<Chunk>>,
    /// Per-core packet deques, padded so neighbouring stripes never
    /// share a cache line; fixed at construction, indexed by
    /// `current_core() & mask`.
    stripes: Box<[CachePadded<SpinLock<VecDeque<u32>>>]>,
    /// `stripes.len() - 1`; stripe counts are powers of two.
    mask: usize,
}

impl PoolShared {
    fn packet_ptr(&self, idx: u32) -> *mut u8 {
        let chunk = idx as usize / CHUNK_PACKETS;
        let slot = idx as usize % CHUNK_PACKETS;
        let base = self.chunk_bases.read(chunk).expect("packet chunk missing");
        (base + slot * self.payload_size) as *mut u8
    }

    /// The calling core's home deque.
    #[inline]
    fn home(&self) -> &SpinLock<VecDeque<u32>> {
        &self.stripes[topology::current_core() & self.mask].0
    }
}

/// A fixed-size pre-registered buffer from a [`PacketPool`].
///
/// Dropping a packet returns it to the pool (to the dropping thread's
/// deque). Explicit assembly in packets (§3.3.1) saves the staging copy
/// of the buffer-copy protocol.
pub struct Packet {
    shared: Arc<PoolShared>,
    idx: u32,
    len: usize,
}

impl Packet {
    /// Packet capacity in bytes (the pool's payload size, not its
    /// packet count).
    #[allow(clippy::misnamed_getters)]
    pub fn capacity(&self) -> usize {
        self.shared.payload_size
    }

    /// Current logical payload length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the logical payload length (after assembling data in place).
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= self.capacity(), "packet payload exceeds capacity");
        self.len = len;
    }

    /// Read access to the full packet buffer.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: this packet exclusively owns its slot while checked out.
        unsafe { std::slice::from_raw_parts(self.shared.packet_ptr(self.idx), self.capacity()) }
    }

    /// Write access to the full packet buffer.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: exclusive ownership (we hold &mut self of the sole
        // Packet for this slot).
        unsafe { std::slice::from_raw_parts_mut(self.shared.packet_ptr(self.idx), self.capacity()) }
    }

    /// Copies `data` into the packet and sets the payload length.
    pub fn fill(&mut self, data: &[u8]) {
        let cap = self.capacity();
        assert!(data.len() <= cap, "payload {} exceeds packet capacity {}", data.len(), cap);
        self.as_mut_slice()[..data.len()].copy_from_slice(data);
        self.len = data.len();
    }

    /// Raw base pointer (for posting as a receive buffer).
    pub fn raw_ptr(&self) -> *mut u8 {
        self.shared.packet_ptr(self.idx)
    }

    /// The packet's pool index, used as a completion context when the
    /// packet's memory is checked out to the fabric.
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Releases ownership without returning the packet to the pool; pair
    /// with [`PacketPool::reclaim`]. Used when the packet's memory is
    /// handed to the fabric as a pre-posted receive buffer.
    pub fn leak(self) -> u32 {
        let idx = self.idx;
        let mut me = std::mem::ManuallyDrop::new(self);
        // SAFETY: `me` is never used again and its Drop is suppressed;
        // dropping the Arc here keeps the pool's refcount balanced
        // (reclaim clones a fresh handle).
        unsafe {
            std::ptr::drop_in_place(&mut me.shared);
        }
        idx
    }

    /// Converts this packet into a refcounted [`SharedPacket`] so many
    /// read-only views can alias it; the slot returns to the pool when
    /// the last view (and the `SharedPacket` itself) drops.
    pub fn into_shared(self) -> SharedPacket {
        let me = std::mem::ManuallyDrop::new(self);
        // SAFETY: `me`'s Drop is suppressed and the fields are moved out
        // exactly once; `SharedInner`'s Drop takes over slot ownership.
        let shared = unsafe { std::ptr::read(&me.shared) };
        SharedPacket { inner: Arc::new(SharedInner { shared, idx: me.idx, len: me.len }) }
    }
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("idx", &self.idx)
            .field("len", &self.len)
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl Drop for Packet {
    fn drop(&mut self) {
        PacketPool::put_idx(&self.shared, self.idx);
    }
}

/// Shared ownership of one checked-out packet slot. Created by
/// [`Packet::into_shared`]; dropped when the `SharedPacket` and every
/// [`PacketView`] carved from it are gone, at which point the slot
/// returns to the dropping thread's deque — exactly once.
struct SharedInner {
    shared: Arc<PoolShared>,
    idx: u32,
    len: usize,
}

impl Drop for SharedInner {
    fn drop(&mut self) {
        PacketPool::put_idx(&self.shared, self.idx);
    }
}

/// A refcounted, read-only packet. One received packet (e.g. a coalesced
/// frame) can back many sub-message [`PacketView`]s without copying; the
/// underlying slot is released when the last handle drops.
#[derive(Clone)]
pub struct SharedPacket {
    inner: Arc<SharedInner>,
}

impl SharedPacket {
    /// Logical payload length (as received).
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Read access to the payload.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the slot stays checked out (and unaliased by writers)
        // while any handle to this `SharedInner` is alive.
        unsafe {
            std::slice::from_raw_parts(self.inner.shared.packet_ptr(self.inner.idx), self.inner.len)
        }
    }

    /// Carves a zero-copy sub-slice view out of this packet.
    ///
    /// # Panics
    /// Panics if `off + len` exceeds the payload length.
    pub fn view(&self, off: usize, len: usize) -> PacketView {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.inner.len),
            "view {off}+{len} out of bounds for packet payload of {}",
            self.inner.len
        );
        PacketView { inner: self.inner.clone(), off, len }
    }
}

impl std::fmt::Debug for SharedPacket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPacket")
            .field("idx", &self.inner.idx)
            .field("len", &self.inner.len)
            .field("refs", &Arc::strong_count(&self.inner))
            .finish()
    }
}

/// A zero-copy read-only slice of a [`SharedPacket`]. Holds a strong
/// reference: the packet slot cannot be reused while any view is alive.
#[derive(Clone)]
pub struct PacketView {
    inner: Arc<SharedInner>,
    off: usize,
    len: usize,
}

impl PacketView {
    /// View length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read access to the viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: bounds checked at construction; slot stays checked out
        // while this view is alive.
        unsafe {
            std::slice::from_raw_parts(
                self.inner.shared.packet_ptr(self.inner.idx).add(self.off),
                self.len,
            )
        }
    }
}

impl std::fmt::Debug for PacketView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketView")
            .field("idx", &self.inner.idx)
            .field("off", &self.off)
            .field("len", &self.len)
            .finish()
    }
}

/// Pool configuration.
#[derive(Clone, Copy, Debug)]
pub struct PacketPoolConfig {
    /// Bytes per packet (also the eager-protocol threshold upstream).
    pub payload_size: usize,
    /// Total number of packets.
    pub count: usize,
}

impl Default for PacketPoolConfig {
    fn default() -> Self {
        Self { payload_size: 8192, count: 1024 }
    }
}

/// The packet pool resource.
#[derive(Clone)]
pub struct PacketPool {
    shared: Arc<PoolShared>,
}

impl PacketPool {
    /// Creates a pool with one stripe per detected core. All packets
    /// initially live on the creating thread's home stripe.
    pub fn new(cfg: PacketPoolConfig) -> Result<Self> {
        Self::with_stripes(cfg, 0)
    }

    /// Creates a pool with an explicit stripe count (`0` = one per
    /// detected core; rounded up to a power of two). Placement-aware
    /// callers pass their core-map width so the pool and the other
    /// per-core structures shard identically.
    pub fn with_stripes(cfg: PacketPoolConfig, stripes: usize) -> Result<Self> {
        if cfg.payload_size == 0 || cfg.count == 0 {
            return Err(FatalError::InvalidArg("packet pool needs size and count > 0".into()));
        }
        let nstripes = topology::stripe_count(stripes);
        let shared = Arc::new(PoolShared {
            payload_size: cfg.payload_size,
            capacity: cfg.count,
            chunk_bases: MpmcArray::with_capacity(16),
            chunks: SpinLock::new(Vec::new()),
            stripes: (0..nstripes).map(|_| CachePadded(SpinLock::new(VecDeque::new()))).collect(),
            mask: nstripes - 1,
        });
        // Allocate chunks.
        let nchunks = cfg.count.div_ceil(CHUNK_PACKETS);
        {
            let mut chunks = shared.chunks.lock();
            for _ in 0..nchunks {
                let layout =
                    std::alloc::Layout::from_size_align(CHUNK_PACKETS * cfg.payload_size, 64)
                        .map_err(|e| FatalError::InvalidArg(e.to_string()))?;
                // SAFETY: layout has non-zero size.
                let base = unsafe { std::alloc::alloc(layout) };
                if base.is_null() {
                    return Err(FatalError::Net("packet chunk allocation failed".into()));
                }
                shared.chunk_bases.push(base as usize);
                chunks.push(Chunk { base, layout });
            }
        }
        // Seed the creator's home stripe with every packet.
        {
            let mut q = shared.home().lock();
            for i in 0..cfg.count as u32 {
                q.push_back(i);
            }
        }
        Ok(Self { shared })
    }

    /// Pool configuration: packet payload size.
    pub fn payload_size(&self) -> usize {
        self.shared.payload_size
    }

    /// Total number of packets.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Packets currently checked out (to users or to the fabric as
    /// pre-posted receives). Diagnostics: takes every stripe lock.
    pub fn outstanding(&self) -> usize {
        let pooled: usize = self.shared.stripes.iter().map(|d| d.0.lock().len()).sum();
        self.shared.capacity - pooled
    }

    /// Number of per-core stripes the pool was laid out with.
    pub fn stripes(&self) -> usize {
        self.shared.stripes.len()
    }

    /// Non-blocking packet acquisition. Returns `None` when the home
    /// stripe is empty and one stealing round finds nothing — the caller
    /// maps this to the `retry`/`NoPacket` status.
    pub fn get(&self) -> Option<Packet> {
        // Fast path: home-stripe tail pop (cache locality with recent
        // puts). Distinguish "locked" from "empty": when a thief holds
        // our lock the deque may still have local packets, so retry
        // with a blocking lock before paying for a steal round of our
        // own. Same-core siblings (oversubscription) land here too.
        let home = self.shared.home();
        let fast = match home.try_lock() {
            Some(mut q) => q.pop_back(),
            None => home.lock().pop_back(),
        };
        if let Some(idx) = fast {
            return Some(Packet { shared: self.shared.clone(), idx, len: 0 });
        }
        // Steal: visit victim stripes starting at a pseudo-random
        // position, taking half of the first non-empty deque from its
        // *head*.
        let nstripes = self.shared.stripes.len();
        let me = topology::current_core() & self.shared.mask;
        let start = rand_seed() % nstripes;
        for k in 0..nstripes {
            let v = (start + k) % nstripes;
            if v == me {
                continue;
            }
            let Some(mut vq) = self.shared.stripes[v].0.try_lock() else { continue };
            if vq.is_empty() {
                continue;
            }
            let take = vq.len().div_ceil(2);
            let stolen: Vec<u32> = (0..take).filter_map(|_| vq.pop_front()).collect();
            drop(vq);
            let first = stolen[0];
            if stolen.len() > 1 {
                let mut q = home.lock();
                for idx in &stolen[1..] {
                    q.push_back(*idx);
                }
            }
            return Some(Packet { shared: self.shared.clone(), idx: first, len: 0 });
        }
        None
    }

    /// Returns a packet index to the current core's stripe (a
    /// cross-core free re-homes the packet to the freeing core).
    #[inline]
    fn put_idx(shared: &Arc<PoolShared>, idx: u32) {
        shared.home().lock().push_back(idx);
    }

    /// Reconstructs a packet from an index previously obtained with
    /// [`Packet::leak`] (e.g. returned in a fabric completion).
    ///
    /// # Safety
    /// `idx` must come from a `leak` on this pool and must not be
    /// reclaimed twice.
    pub unsafe fn reclaim(&self, idx: u32, len: usize) -> Packet {
        Packet { shared: self.shared.clone(), idx, len }
    }
}

impl std::fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketPool")
            .field("payload_size", &self.shared.payload_size)
            .field("capacity", &self.shared.capacity)
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

/// Seed source for per-thread victim-selection RNGs.
static NEXT_SEED: AtomicU64 = AtomicU64::new(1);

/// Cheap per-thread xorshift for victim selection (no rand dependency on
/// the critical path). Seeded once per thread from a global counter run
/// through a splitmix64 finalizer so consecutive thread seeds are
/// decorrelated.
fn rand_seed() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SEED: Cell<u64> = const { Cell::new(0) };
    }
    SEED.with(|s| {
        let mut x = s.get();
        if x == 0 {
            let mut z =
                NEXT_SEED.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x = (z ^ (z >> 31)) | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x as usize
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn get_put_roundtrip() {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 128, count: 8 }).unwrap();
        let mut p = pool.get().unwrap();
        p.fill(b"hello");
        assert_eq!(&p.as_slice()[..5], b"hello");
        assert_eq!(p.len(), 5);
        assert_eq!(pool.outstanding(), 1);
        drop(p);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 64, count: 4 }).unwrap();
        let held: Vec<Packet> = (0..4).map(|_| pool.get().unwrap()).collect();
        assert!(pool.get().is_none());
        drop(held);
        assert!(pool.get().is_some());
    }

    #[test]
    fn leak_and_reclaim() {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 64, count: 2 }).unwrap();
        let mut p = pool.get().unwrap();
        p.fill(&[1, 2, 3]);
        let idx = p.leak();
        assert_eq!(pool.outstanding(), 1);
        // SAFETY: idx came from leak, reclaimed once.
        let p2 = unsafe { pool.reclaim(idx, 3) };
        assert_eq!(&p2.as_slice()[..3], &[1, 2, 3]);
        drop(p2);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn stealing_across_threads() {
        // Two explicit stripes so the test exercises the cross-core
        // steal path even on a single-core host: the pool is seeded on
        // this thread's home stripe, and a thread bound to the *other*
        // logical core must steal to make progress.
        let pool =
            PacketPool::with_stripes(PacketPoolConfig { payload_size: 32, count: 64 }, 2).unwrap();
        let my_core = topology::current_core();
        let pool2 = pool.clone();
        let t = std::thread::spawn(move || {
            topology::bind_current_thread(my_core + 1);
            let mut got = Vec::new();
            for _ in 0..16 {
                if let Some(p) = pool2.get() {
                    got.push(p);
                }
            }
            got.len()
        });
        let stolen = t.join().unwrap();
        assert!(stolen > 0, "remote core should steal packets");
        drop(pool);
    }

    #[test]
    fn concurrent_get_put_stress() {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 32, count: 128 }).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let mut ok = 0usize;
                    for _ in 0..5_000 {
                        if let Some(p) = pool.get() {
                            ok += 1;
                            drop(p);
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn shared_views_release_slot_once() {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 64, count: 2 }).unwrap();
        let mut p = pool.get().unwrap();
        p.fill(b"abcdefgh");
        let shared = p.into_shared();
        assert_eq!(pool.outstanding(), 1);
        let v1 = shared.view(0, 4);
        let v2 = shared.view(4, 4);
        drop(shared);
        assert_eq!(pool.outstanding(), 1, "views keep the slot checked out");
        assert_eq!(v1.as_slice(), b"abcd");
        assert_eq!(v2.as_slice(), b"efgh");
        drop(v1);
        assert_eq!(pool.outstanding(), 1);
        drop(v2);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn view_bounds_checked() {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 16, count: 1 }).unwrap();
        let mut p = pool.get().unwrap();
        p.fill(&[7u8; 8]);
        let shared = p.into_shared();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| shared.view(4, 8)));
        assert!(r.is_err(), "view past payload length must panic");
        let v = shared.view(8, 0);
        assert!(v.is_empty());
    }

    #[test]
    fn local_get_succeeds_while_lock_contended() {
        // Satellite regression: a busy local lock must not make `get`
        // fail (or steal) when local packets exist. With a single
        // packet that only ever lives on this thread's deque, `get`
        // must succeed on every iteration even while another thread
        // hammers every deque lock via `outstanding()`.
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 32, count: 1 }).unwrap();
        let stop = Arc::new(AtomicUsize::new(0));
        let pool2 = pool.clone();
        let stop2 = stop.clone();
        let t = std::thread::spawn(move || {
            while stop2.load(Ordering::Relaxed) == 0 {
                let _ = pool2.outstanding();
            }
        });
        for _ in 0..20_000 {
            let p = pool.get().expect("local packet present; lock-busy must retry, not fail");
            drop(p);
        }
        stop.store(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn packet_capacity_asserts() {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 8, count: 1 }).unwrap();
        let mut p = pool.get().unwrap();
        p.fill(&[0u8; 8]);
        assert_eq!(p.len(), 8);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.fill(&[0u8; 9]);
        }));
        assert!(r.is_err());
    }
}
