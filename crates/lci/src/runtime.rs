//! The runtime object (paper §3.2.2).
//!
//! LCI has no global initialization: the user (de)allocates *runtime
//! objects* wrapping default configurations and communication resources.
//! Multiple runtimes can coexist (library composition) without
//! interfering: each has its own devices, packet pool, matching engine
//! and registered-completion table.
//!
//! Deviation from the C++ API: the paper's `g_runtime` global default is
//! omitted because this reproduction runs many ranks inside one process
//! (DESIGN.md); a global per-process runtime would alias ranks.

use crate::coalesce::CoalesceConfig;
use crate::comp::queue::CqConfig;
use crate::comp::Comp;
use crate::device::{Device, DeviceInner, MatchEntry};
use crate::error::{FatalError, Result};
use crate::matching::{MatchingConfig, MatchingEngine};
use crate::packet_pool::{PacketPool, PacketPoolConfig};
use crate::progress::{ProgressEngine, ProgressMode};
use crate::types::{RComp, Rank};
use lci_fabric::sync::{Doorbell, MpmcArray};
use lci_fabric::topology;
use lci_fabric::{DeviceConfig, Fabric, NetContext};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Thread-per-core placement policy (`RuntimeConfig::placement`).
///
/// When enabled (the default), the runtime lays its hot-path resources
/// out over the [`topology`] core map: per-core packet-pool stripes,
/// per-core buffer-pool shelves, per-core stats cells, core-keyed
/// ctx-pool shard selection, core-pinned `Dedicated`/`Hybrid` progress
/// threads, and core-keyed default-device routing
/// ([`Runtime::home_device`]). Disabled, every structure collapses to
/// one stripe — the core-oblivious layout, kept as an ablation
/// baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Master switch for core-aware resource layout.
    pub enabled: bool,
    /// Home each dedicated progress thread on the logical core of its
    /// device partition (thread `slot` → core `slot`), so engine-side
    /// bookkeeping stays on the engine's core. Logical binding only;
    /// OS affinity belongs to the launcher.
    pub pin_progress: bool,
    /// Core-map width override; `None` detects
    /// ([`topology::ncores`], overridable with `LCI_CORES`). Tests use
    /// an explicit width to exercise multi-stripe layouts on small
    /// hosts.
    pub cores: Option<usize>,
}

impl Default for Placement {
    fn default() -> Self {
        Self { enabled: true, pin_progress: true, cores: None }
    }
}

impl Placement {
    /// The core-map width this placement resolves to (1 when disabled).
    pub fn effective_cores(&self) -> usize {
        if !self.enabled {
            1
        } else {
            self.cores.unwrap_or_else(topology::ncores).max(1)
        }
    }

    /// Stripe count the per-core structures are laid out with (the
    /// effective core count rounded up to a power of two).
    pub fn stripes(&self) -> usize {
        topology::stripe_count(self.effective_cores())
    }

    /// Placement with an explicit core-map width.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = Some(cores);
        self
    }

    /// The core-oblivious single-stripe layout (ablation baseline).
    pub fn disabled() -> Self {
        Self { enabled: false, pin_progress: false, cores: None }
    }
}

/// Runtime configuration: the attributes a runtime is allocated with.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Fabric device configuration (backend, lock discipline,
    /// thread-domain strategy, RX capacity).
    pub device: DeviceConfig,
    /// Packet pool sizing.
    pub packet: PacketPoolConfig,
    /// Messages up to this size use the inject protocol (inline, `done`
    /// on success).
    pub inject_size: usize,
    /// Messages up to this size use the buffer-copy protocol; larger ones
    /// use zero-copy rendezvous. Must be at most the packet payload size
    /// (incoming eager messages land in packets).
    pub eager_size: usize,
    /// Pre-posted receive target per device.
    pub prepost: usize,
    /// Restock the pre-posted receives only when their count falls to
    /// this low watermark (hysteresis), and then refill back to
    /// [`prepost`](Self::prepost) with one batched posting call.
    /// `None` (the default) uses half of `prepost`. A value equal to
    /// `prepost` restores the old top-up-every-progress-call behaviour;
    /// it must not exceed `prepost`.
    pub prepost_watermark: Option<usize>,
    /// Matching-engine configuration.
    pub matching: MatchingConfig,
    /// Default completion-queue configuration.
    pub cq: CqConfig,
    /// Completions handled per progress call.
    pub progress_batch: usize,
    /// Sender-side small-message coalescing (off by default; see
    /// [`crate::coalesce`]).
    pub coalesce: CoalesceConfig,
    /// Deliver eager payloads (AM completions, unexpected-message
    /// parking) as zero-copy packet-backed views instead of owned
    /// copies. A copy still happens when the user posted their own
    /// receive buffer. On by default; the ablation knob to recover the
    /// copying receive path.
    pub zero_copy_recv: bool,
    /// Pipeline rendezvous payloads as multiple RDMA-write chunks (the
    /// large-message pipeline, DESIGN.md §4.6). Off recovers the
    /// monolithic single-write behaviour (the ablation baseline).
    pub rdv_chunking: bool,
    /// Chunk size for pipelined rendezvous writes.
    pub rdv_chunk_size: usize,
    /// Maximum chunks outstanding per rendezvous transfer.
    pub rdv_max_inflight: usize,
    /// Stripe count for the pending-rendezvous tables (send and receive
    /// state each sharded over this many independently locked slabs).
    pub rdv_shards: usize,
    /// Use the naive (clone-per-round, serialized-send) collective
    /// implementations instead of the chunk-pipelined ones — the
    /// measured ablation baseline for the collectives bench (see
    /// [`crate::coll`]).
    pub coll_naive: bool,
    /// Chunk size the pipelined ring allreduce splits each block into.
    /// Must be nonzero and at most 1 MiB (the buffer pool's largest
    /// recycled size class — bigger chunks would defeat pooled staging).
    pub coll_chunk_size: usize,
    /// Maximum collective chunk sends outstanding per rank (the
    /// pipelining window of ring allreduce and the pairwise alltoall).
    pub coll_max_inflight: usize,
    /// Recycle steady-state data-path storage: pooled operation contexts
    /// (slab-backed, generation-tagged) instead of per-post boxes, and
    /// shelf-recycled staging/bounce buffers instead of fresh heap
    /// allocations. On by default; the ablation knob to recover the
    /// allocate-per-operation baseline.
    pub alloc_recycling: bool,
    /// Who drives progress: polling workers (the default), dedicated
    /// progress threads with doorbell-driven parking, or a hybrid where
    /// workers steal progress while the dedicated thread is parked (see
    /// [`crate::progress`]). `Dedicated`/`Hybrid` auto-spawn their
    /// threads at runtime allocation.
    pub progress_mode: ProgressMode,
    /// Thread-per-core resource layout (see [`Placement`]). On by
    /// default; packet-pool stripes, buffer-pool shelves, and stats
    /// cells are laid out per logical core, dedicated progress threads
    /// pin next to their device partition, and
    /// [`Runtime::home_device`] routes each worker to a core-local
    /// device.
    pub placement: Placement,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let packet = PacketPoolConfig::default();
        Self {
            device: DeviceConfig::default(),
            eager_size: packet.payload_size,
            packet,
            inject_size: 64,
            prepost: 64,
            prepost_watermark: None,
            matching: MatchingConfig::default(),
            cq: CqConfig::default(),
            progress_batch: 64,
            coalesce: CoalesceConfig::default(),
            zero_copy_recv: true,
            rdv_chunking: true,
            rdv_chunk_size: 64 << 10,
            rdv_max_inflight: 4,
            rdv_shards: 8,
            coll_naive: false,
            coll_chunk_size: 64 << 10,
            coll_max_inflight: 4,
            alloc_recycling: true,
            progress_mode: ProgressMode::Workers,
            placement: Placement::default(),
        }
    }
}

impl RuntimeConfig {
    /// Preset for the ibv-like backend (fine-grained locks; plays SDSC
    /// Expanse in the benchmarks).
    pub fn ibv() -> Self {
        Self { device: DeviceConfig::ibv(), ..Self::default() }
    }

    /// Preset for the ofi-like backend (endpoint lock; plays NCSA Delta).
    pub fn ofi() -> Self {
        Self { device: DeviceConfig::ofi(), ..Self::default() }
    }

    /// Preset for the shared-memory backend (real cross-process-capable
    /// rings; ibv-style lock layout).
    pub fn shm() -> Self {
        Self { device: DeviceConfig::shm(), ..Self::default() }
    }

    /// Replaces the device configuration, keeping everything else.
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// Selects the runtime's transport by name: `sim-ibv`, `sim-ofi`, or
    /// `shm`. Unknown names return `None`.
    pub fn with_transport(self, name: &str) -> Option<Self> {
        let device = match name {
            "sim-ibv" | "ibv" => DeviceConfig::ibv(),
            "sim-ofi" | "ofi" => DeviceConfig::ofi(),
            "shm" => DeviceConfig::shm(),
            _ => return None,
        };
        Some(self.with_device(device))
    }

    /// Effective low watermark for receive replenishment (see
    /// [`prepost_watermark`](Self::prepost_watermark)).
    pub fn effective_prepost_watermark(&self) -> usize {
        self.prepost_watermark.unwrap_or(self.prepost / 2)
    }

    /// Toggles data-path storage recycling (see
    /// [`alloc_recycling`](Self::alloc_recycling)).
    pub fn with_alloc_recycling(mut self, on: bool) -> Self {
        self.alloc_recycling = on;
        self
    }

    /// Selects who drives progress (see
    /// [`progress_mode`](Self::progress_mode)).
    pub fn with_progress_mode(mut self, mode: ProgressMode) -> Self {
        self.progress_mode = mode;
        self
    }

    /// Sets the thread-per-core placement policy (see [`Placement`]).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Selects the naive collective implementations (see
    /// [`coll_naive`](Self::coll_naive)) — the ablation baseline.
    pub fn with_coll_naive(mut self, on: bool) -> Self {
        self.coll_naive = on;
        self
    }

    /// Sets the collective pipelining chunk size (see
    /// [`coll_chunk_size`](Self::coll_chunk_size)).
    pub fn with_coll_chunk_size(mut self, bytes: usize) -> Self {
        self.coll_chunk_size = bytes;
        self
    }

    /// Sets the collective in-flight chunk window (see
    /// [`coll_max_inflight`](Self::coll_max_inflight)).
    pub fn with_coll_max_inflight(mut self, window: usize) -> Self {
        self.coll_max_inflight = window;
        self
    }

    /// Scales pool/prepost sizes down, for tests and high-rank-count
    /// benchmarks inside one process.
    pub fn small() -> Self {
        Self {
            packet: PacketPoolConfig { payload_size: 4096, count: 256 },
            eager_size: 4096,
            prepost: 32,
            matching: MatchingConfig { buckets: 512 },
            ..Self::default()
        }
    }
}

pub(crate) struct RuntimeInner {
    pub fabric: Arc<Fabric>,
    pub rank: Rank,
    pub config: RuntimeConfig,
    pub netctx: NetContext,
    pub pool: PacketPool,
    pub matching: Arc<MatchingEngine<MatchEntry>>,
    pub rcomp: MpmcArray<Comp>,
    /// Collective sequence counter (see `crate::coll`).
    pub coll_seq: std::sync::atomic::AtomicU32,
    /// Cached collective-engine state (lazily initialised by
    /// [`crate::coll`]): reusable completion objects, recycled landing
    /// buffers, and bookkeeping scratch, so warm collectives allocate
    /// nothing. Collectives on one runtime serialize on this lock —
    /// the usual "all ranks call collectives in the same order"
    /// contract already implies one collective at a time per rank.
    pub coll: parking_lot::Mutex<Option<crate::coll::CollState>>,
    /// Every device allocated on this runtime, in creation order. Weak:
    /// `DeviceInner` holds `rt: Arc<RuntimeInner>`, so a strong registry
    /// would cycle and leak. Progress threads and
    /// [`Runtime::progress_all`] round-robin over this.
    pub devices: MpmcArray<Weak<DeviceInner>>,
    /// Rung by progress threads after every useful sweep (and by useful
    /// worker steals while an engine runs); lets blocking `wait_until`
    /// park on arbitrary predicates.
    pub comp_bell: Arc<Doorbell>,
    /// The dedicated progress threads, if any.
    pub progress: ProgressEngine,
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        // Progress threads hold only `Weak` runtime references, so they
        // are never inside an upgraded section here; wake and join them.
        self.progress.shutdown_and_join();
    }
}

/// A runtime handle (cheap to clone). Dropping the last handle releases
/// the runtime's resources.
#[derive(Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<RuntimeInner>,
    default_dev: Device,
}

impl Runtime {
    /// Allocates a runtime for `rank` on `fabric` with `config`, creating
    /// the default device (device 0 when this is the rank's first
    /// runtime).
    pub fn new(fabric: Arc<Fabric>, rank: Rank, config: RuntimeConfig) -> Result<Runtime> {
        if config.eager_size > config.packet.payload_size {
            return Err(FatalError::InvalidArg(
                "eager_size must not exceed packet payload size".into(),
            ));
        }
        if config.prepost_watermark.is_some_and(|w| w > config.prepost) {
            return Err(FatalError::InvalidArg("prepost_watermark must not exceed prepost".into()));
        }
        if config.coalesce.enabled {
            if config.coalesce.max_bytes > config.packet.payload_size {
                return Err(FatalError::InvalidArg(
                    "coalesce.max_bytes must not exceed packet payload size".into(),
                ));
            }
            if config.coalesce.max_msgs < 2 || config.coalesce.max_msgs >= (1 << 24) {
                return Err(FatalError::InvalidArg(
                    "coalesce.max_msgs must be in 2..2^24 (frame header aux)".into(),
                ));
            }
        }
        if config.rdv_chunk_size == 0 {
            return Err(FatalError::InvalidArg("rdv_chunk_size must be nonzero".into()));
        }
        if config.rdv_max_inflight == 0 {
            return Err(FatalError::InvalidArg("rdv_max_inflight must be nonzero".into()));
        }
        if config.rdv_shards == 0 || config.rdv_shards > 256 {
            return Err(FatalError::InvalidArg("rdv_shards must be in 1..=256".into()));
        }
        if config.coll_chunk_size == 0 || config.coll_chunk_size > (1 << 20) {
            return Err(FatalError::InvalidArg(
                "coll_chunk_size must be in 1..=1MiB (the largest pooled size class)".into(),
            ));
        }
        if config.coll_max_inflight == 0 {
            return Err(FatalError::InvalidArg("coll_max_inflight must be nonzero".into()));
        }
        match config.progress_mode {
            ProgressMode::Dedicated(n) | ProgressMode::Hybrid(n) if n == 0 || n > 64 => {
                return Err(FatalError::InvalidArg(
                    "progress thread count must be in 1..=64".into(),
                ));
            }
            _ => {}
        }
        if config.placement.cores == Some(0) {
            return Err(FatalError::InvalidArg("placement.cores must be nonzero".into()));
        }
        if config.placement.cores.is_some_and(|c| c > topology::MAX_CORES) {
            return Err(FatalError::InvalidArg(format!(
                "placement.cores must be at most {}",
                topology::MAX_CORES
            )));
        }
        if rank >= fabric.nranks() {
            return Err(FatalError::InvalidArg(format!(
                "rank {rank} out of range for fabric of {}",
                fabric.nranks()
            )));
        }
        // The placement policy decides every per-core layout from here
        // on: the packet-pool stripe count here, and (via the stored
        // config) buffer-pool shelves, stats cells, and progress-thread
        // pinning inside `Device::create`/`ProgressEngine`. Devices
        // inherit the stripe count through `device.buf_pool.stripes`
        // unless the caller forced one explicitly.
        let mut config = config;
        if config.device.buf_pool.stripes == 0 {
            config.device.buf_pool.stripes = config.placement.stripes();
        }
        let netctx = NetContext::new(fabric.clone(), rank);
        let pool = PacketPool::with_stripes(config.packet, config.placement.stripes())?;
        let inner = Arc::new(RuntimeInner {
            fabric,
            rank,
            netctx,
            pool,
            matching: Arc::new(MatchingEngine::with_config(config.matching)),
            rcomp: MpmcArray::with_capacity(16),
            coll_seq: std::sync::atomic::AtomicU32::new(0),
            coll: parking_lot::Mutex::new(None),
            devices: MpmcArray::with_capacity(4),
            comp_bell: Arc::new(Doorbell::new()),
            progress: ProgressEngine::new(),
            config,
        });
        let default_dev = Device::create(inner.clone())?;
        let nthreads = inner.config.progress_mode.dedicated_threads();
        if nthreads > 0 {
            ProgressEngine::spawn(&inner, nthreads)?;
        }
        Ok(Runtime { inner, default_dev })
    }

    /// Allocates a runtime with the default configuration.
    pub fn with_defaults(fabric: Arc<Fabric>, rank: Rank) -> Result<Runtime> {
        Self::new(fabric, rank, RuntimeConfig::default())
    }

    /// This rank (the paper's `get_rank_me`).
    pub fn rank_me(&self) -> Rank {
        self.inner.rank
    }

    /// Total ranks (the paper's `get_rank_n`).
    pub fn rank_n(&self) -> usize {
        self.inner.fabric.nranks()
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.inner.config
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.inner.fabric
    }

    /// The default device.
    pub fn device(&self) -> &Device {
        &self.default_dev
    }

    /// Allocates an additional device (paper `alloc_device`); threads
    /// operating on different devices do not interfere.
    pub fn alloc_device(&self) -> Result<Device> {
        Device::create(self.inner.clone())
    }

    /// The calling thread's core-local device: with placement enabled
    /// and several devices allocated, workers on different cores spread
    /// over the device list (`core % ndevices`) instead of all
    /// funnelling through device 0. Falls back to the default device
    /// when placement is disabled, only one device exists, or the
    /// core-mapped device has been dropped.
    pub fn home_device(&self) -> Device {
        let n = self.inner.devices.len();
        if self.inner.config.placement.enabled && n > 1 {
            let idx = topology::current_core() % n;
            if let Some(inner) = self.inner.devices.read(idx).and_then(|w| w.upgrade()) {
                return Device { inner };
            }
        }
        self.default_dev.clone()
    }

    /// The runtime's packet pool.
    pub fn packet_pool(&self) -> &PacketPool {
        &self.inner.pool
    }

    /// Registers a completion object into a remote completion handle
    /// (paper `register_rcomp`). All ranks must register their completion
    /// objects in the same order so handles agree, or exchange handles
    /// out of band.
    pub fn register_rcomp(&self, comp: Comp) -> RComp {
        let rcomp = self.inner.rcomp.push(comp) as RComp;
        // Wake parked progress threads: an inbound delivery that raced
        // this registration is parked on the device and retried on the
        // next progress call (see `Device::retry_pending_inbound`).
        self.inner.progress.ring_all();
        rcomp
    }

    /// Looks up a registered completion object.
    pub fn rcomp_lookup(&self, rcomp: RComp) -> Option<Comp> {
        self.inner.rcomp.read(rcomp as usize)
    }

    /// Makes progress on the default device (paper `progress`). Returns
    /// whether any work was performed.
    pub fn progress(&self) -> Result<bool> {
        self.default_dev.progress()
    }

    /// Makes progress on *every* device allocated on this runtime
    /// ([`alloc_device`](Self::alloc_device) included), in creation
    /// order. Returns whether any device performed work.
    pub fn progress_all(&self) -> Result<bool> {
        let mut did = false;
        let n = self.inner.devices.len();
        for i in 0..n {
            if let Some(inner) = self.inner.devices.read(i).and_then(|w| w.upgrade()) {
                did |= Device { inner }.progress()?;
            }
        }
        Ok(did)
    }

    /// Mode-aware variant of [`progress_all`](Self::progress_all):
    /// each device decides per the runtime's progress mode whether a
    /// worker-side call should really poll (see
    /// [`Device::worker_progress`]).
    pub fn worker_progress_all(&self) -> Result<bool> {
        let mut did = false;
        let n = self.inner.devices.len();
        for i in 0..n {
            if let Some(inner) = self.inner.devices.read(i).and_then(|w| w.upgrade()) {
                did |= Device { inner }.worker_progress()?;
            }
        }
        Ok(did)
    }

    /// Spawns `n` dedicated progress threads that partition this
    /// runtime's devices and run the spin→yield→park loop (see
    /// [`crate::progress`]). `Dedicated`/`Hybrid` runtimes do this
    /// automatically at allocation; call it manually to add an engine to
    /// a `Workers`-mode runtime. Errors if threads are already running.
    pub fn spawn_progress_threads(&self, n: usize) -> Result<()> {
        ProgressEngine::spawn(&self.inner, n)
    }

    /// Stops and joins this runtime's dedicated progress threads, if
    /// any. Workers fall back to polling for themselves.
    pub fn stop_progress_threads(&self) {
        self.inner.progress.shutdown_and_join();
    }

    /// Whether dedicated progress threads are currently running.
    pub fn progress_engine_active(&self) -> bool {
        self.inner.progress.engine_active()
    }

    /// Spins `f` to readiness — the canonical blocking helper for tests
    /// and simple clients. Pumps progress on every device of this
    /// runtime (mode-aware).
    ///
    /// With polling workers, progress calls that find work reset the
    /// backoff; idle polls spin briefly and then yield the core, so
    /// oversubscribed rank threads (many ranks per core in this
    /// reproduction) don't starve the peer whose progress they are
    /// waiting on. With a dedicated progress engine the call parks on
    /// the runtime's completion bell instead of polling (`Dedicated`),
    /// or steals progress until the backoff runs out and then parks
    /// (`Hybrid`); the engine rings the bell after every useful sweep,
    /// and the eventcount protocol (epoch snapshot → recheck predicate →
    /// wait) makes the handoff lost-wakeup-free.
    pub fn wait_until(&self, mut f: impl FnMut() -> bool) -> Result<()> {
        const WAIT_SLICE: Duration = Duration::from_millis(100);
        let mut idle: u32 = 0;
        loop {
            if f() {
                return Ok(());
            }
            if matches!(self.inner.config.progress_mode, ProgressMode::Dedicated(_))
                && self.inner.progress.engine_active()
            {
                // Fully blocking: the engine owns all polling.
                let seen = self.inner.comp_bell.epoch();
                if f() {
                    return Ok(());
                }
                self.inner.comp_bell.wait(seen, WAIT_SLICE);
                continue;
            }
            if self.worker_progress_all()? {
                idle = 0;
            } else {
                idle = idle.saturating_add(1);
            }
            if idle < 64 {
                std::hint::spin_loop();
            } else if idle < 256 || !self.inner.progress.engine_active() {
                std::thread::yield_now();
            } else {
                // Hybrid (or a manually spawned engine): the dedicated
                // thread is awake and polling, so stealing found nothing;
                // park on the completion bell until its next useful sweep.
                let seen = self.inner.comp_bell.epoch();
                if f() {
                    return Ok(());
                }
                self.inner.comp_bell.wait(seen, WAIT_SLICE);
            }
        }
    }

    /// Barrier across all ranks, implemented over the out-of-band
    /// bootstrap channel (setup/teardown only; use
    /// [`crate::collective::barrier`] on the data path).
    pub fn oob_barrier(&self) {
        self.inner.fabric.oob_barrier();
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("rank", &self.inner.rank)
            .field("nranks", &self.inner.fabric.nranks())
            .finish()
    }
}
