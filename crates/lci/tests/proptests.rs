//! Property-based tests for LCI's core invariants: matching-engine
//! conservation, completion-queue FIFO/no-loss, header codecs, packet
//! pool accounting, synchronizer thresholds, and message-integrity
//! through the full runtime.

use lci::proto::{Header, MsgType, RtrPayload, RtsPayload};
use lci::{
    Comp, CompDesc, CompQueue, CqConfig, CqImpl, MatchKind, MatchingConfig, MatchingEngine,
    MatchingPolicy, PacketPool, PacketPoolConfig, PostResult, Runtime, RuntimeConfig,
};
use lci_fabric::Fabric;
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = MatchingPolicy> {
    prop_oneof![
        Just(MatchingPolicy::RankTag),
        Just(MatchingPolicy::RankOnly),
        Just(MatchingPolicy::TagOnly),
        Just(MatchingPolicy::None),
    ]
}

fn arb_msgtype() -> impl Strategy<Value = MsgType> {
    prop_oneof![
        Just(MsgType::Eager),
        Just(MsgType::EagerAm),
        Just(MsgType::RtsSr),
        Just(MsgType::RtsAm),
        Just(MsgType::Rtr),
        Just(MsgType::Fin),
        Just(MsgType::PutSignal),
        Just(MsgType::GetSignal),
    ]
}

proptest! {
    /// Header encode/decode is the identity on all valid field values.
    #[test]
    fn header_roundtrip(ty in arb_msgtype(), policy in arb_policy(), tag in any::<u32>(), aux in 0u32..(1 << 24)) {
        let h = Header::new(ty, policy, tag, aux);
        prop_assert_eq!(Header::decode(h.encode()).unwrap(), h);
    }

    /// Coalesced-frame codec: pack/unpack is the identity on any record
    /// sequence, and truncation mid-record is always rejected. A cut at
    /// a record boundary parses as the record prefix — the frame
    /// header's `aux` sub-count catches those at the device layer.
    #[test]
    fn coalesce_frame_roundtrip_and_truncation(
        subs in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)),
            1..12,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        use lci::proto::{coalesce_pack, coalesce_unpack};
        let mut frame = Vec::new();
        let mut boundaries = Vec::new();
        for (imm, payload) in &subs {
            coalesce_pack(&mut frame, *imm, payload);
            boundaries.push(frame.len());
        }
        let got = coalesce_unpack(&frame).unwrap();
        prop_assert_eq!(got.len(), subs.len());
        for ((imm, payload), (got_imm, got_payload)) in subs.iter().zip(&got) {
            prop_assert_eq!(imm, got_imm);
            prop_assert_eq!(&payload[..], *got_payload);
        }
        let cut = (frame.len() as f64 * cut_frac) as usize;
        match boundaries.iter().position(|&b| b == cut) {
            Some(i) => {
                prop_assert_eq!(coalesce_unpack(&frame[..cut]).unwrap().len(), i + 1);
            }
            None => prop_assert!(coalesce_unpack(&frame[..cut]).is_err()),
        }
    }

    /// RTS/RTR payload codecs round-trip.
    #[test]
    fn rendezvous_payload_roundtrip(send_id in any::<u32>(), size in any::<u64>(), recv_id in any::<u32>(), rkey in any::<u32>()) {
        let rts = RtsPayload { send_id, size };
        prop_assert_eq!(RtsPayload::decode(&rts.encode()).unwrap(), rts);
        let rtr = RtrPayload { send_id, recv_id, rkey };
        prop_assert_eq!(RtrPayload::decode(&rtr.encode()).unwrap(), rtr);
    }

    /// Matching keys: same (rank, tag, policy) always collide; the
    /// fields a policy ignores never affect its key.
    #[test]
    fn matching_key_laws(rank in 0usize..1 << 20, tag in any::<u32>(), rank2 in 0usize..1 << 20, tag2 in any::<u32>()) {
        use lci::matching::make_key;
        prop_assert_eq!(
            make_key(rank, tag, MatchingPolicy::RankOnly),
            make_key(rank, tag2, MatchingPolicy::RankOnly)
        );
        prop_assert_eq!(
            make_key(rank, tag, MatchingPolicy::TagOnly),
            make_key(rank2, tag, MatchingPolicy::TagOnly)
        );
        prop_assert_eq!(
            make_key(rank, tag, MatchingPolicy::None),
            make_key(rank2, tag2, MatchingPolicy::None)
        );
        // Distinct policies never collide.
        prop_assert_ne!(
            make_key(rank, tag, MatchingPolicy::RankTag),
            make_key(rank, tag, MatchingPolicy::RankOnly)
        );
    }

    /// Matching engine conservation: every insert either stores or
    /// removes exactly one complementary entry; FIFO per key.
    #[test]
    fn matching_engine_conservation(ops in proptest::collection::vec((0u64..8, any::<bool>()), 1..300)) {
        let engine: MatchingEngine<usize> = MatchingEngine::with_config(MatchingConfig { buckets: 4 });
        // Model: per key, a signed queue (positive: sends, negative: recvs).
        let mut model: std::collections::HashMap<u64, std::collections::VecDeque<(usize, MatchKind)>> =
            Default::default();
        for (i, (key, is_send)) in ops.into_iter().enumerate() {
            let kind = if is_send { MatchKind::Send } else { MatchKind::Recv };
            let got = engine.insert(key, i, kind);
            let q = model.entry(key).or_default();
            match q.front() {
                Some(&(head, hk)) if hk == kind.opposite() => {
                    let (matched, mine) = got.expect("model expects a match");
                    prop_assert_eq!(matched, head);
                    prop_assert_eq!(mine, i);
                    q.pop_front();
                }
                _ => {
                    prop_assert!(got.is_none());
                    q.push_back((i, kind));
                }
            }
        }
        let model_len: usize = model.values().map(|q| q.len()).sum();
        prop_assert_eq!(engine.len(), model_len);
    }

    /// Completion queues are FIFO for a single producer/consumer, for
    /// both implementations.
    #[test]
    fn comp_queue_fifo(tags in proptest::collection::vec(any::<u32>(), 1..200), seg in any::<bool>()) {
        let imp = if seg { CqImpl::Segmented } else { CqImpl::FaaArray };
        let q = CompQueue::new(CqConfig { imp, capacity: 256 });
        for &t in &tags {
            q.push(CompDesc { tag: t, ..Default::default() });
        }
        for &t in &tags {
            prop_assert_eq!(q.pop().unwrap().tag, t);
        }
        prop_assert!(q.pop().is_none());
    }

    /// Packet pool: outstanding accounting is exact across arbitrary
    /// get/put interleavings, and capacity is never exceeded.
    #[test]
    fn packet_pool_accounting(ops in proptest::collection::vec(any::<bool>(), 1..200), count in 1usize..32) {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 32, count }).unwrap();
        let mut held = Vec::new();
        for get in ops {
            if get {
                match pool.get() {
                    Some(p) => held.push(p),
                    None => prop_assert_eq!(held.len(), count, "get fails only when exhausted"),
                }
            } else if let Some(p) = held.pop() {
                drop(p);
            }
            prop_assert_eq!(pool.outstanding(), held.len());
        }
    }

    /// Synchronizer: ready exactly at the expected count, and take()
    /// returns every signaled descriptor.
    #[test]
    fn synchronizer_threshold(expected in 1usize..32) {
        let c = Comp::alloc_sync(expected);
        let s = c.as_sync().unwrap();
        for i in 0..expected {
            prop_assert_eq!(s.test(), false, "not ready at {}/{}", i, expected);
            c.signal(CompDesc { tag: i as u32, ..Default::default() });
        }
        prop_assert!(s.test());
        let mut tags: Vec<u32> = s.take().into_iter().map(|d| d.tag).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..expected as u32).collect::<Vec<_>>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// End-to-end integrity: arbitrary message sizes (covering inject,
    /// bcopy, and rendezvous) and tags arrive intact, whatever the
    /// protocol path.
    #[test]
    fn runtime_sendrecv_integrity(
        sizes in proptest::collection::vec(1usize..20_000, 1..5),
        tag0 in 0u32..1000,
    ) {
        let fabric = Fabric::new(2);
        let f2 = fabric.clone();
        let sizes2 = sizes.clone();
        let peer = std::thread::spawn(move || {
            let rt = Runtime::new(f2, 1, RuntimeConfig::small()).unwrap();
            for (i, &size) in sizes2.iter().enumerate() {
                let comp = Comp::alloc_sync(1);
                let res = rt
                    .post_recv(0, vec![0u8; size.max(64)], tag0 + i as u32, comp.clone())
                    .unwrap();
                let desc = match res {
                    PostResult::Done(d) => d,
                    PostResult::Posted => {
                        let s = comp.as_sync().unwrap();
                        while !s.test() {
                            rt.progress().unwrap();
                        }
                        s.take().pop().unwrap()
                    }
                    PostResult::Retry(_) => unreachable!(),
                };
                assert_eq!(desc.data.len(), size);
                let expect = (i as u8).wrapping_mul(31);
                assert!(desc.as_slice().iter().all(|&b| b == expect));
            }
        });
        let rt = Runtime::new(fabric, 0, RuntimeConfig::small()).unwrap();
        for (i, &size) in sizes.iter().enumerate() {
            let fill = (i as u8).wrapping_mul(31);
            let comp = Comp::alloc_sync(1);
            loop {
                match rt.post_send(1, vec![fill; size], tag0 + i as u32, comp.clone()).unwrap() {
                    PostResult::Retry(_) => {
                        rt.progress().unwrap();
                    }
                    PostResult::Done(_) => break,
                    PostResult::Posted => {
                        comp.as_sync().unwrap().wait_with(|| {
                            rt.progress().unwrap();
                        });
                        break;
                    }
                }
            }
        }
        peer.join().unwrap();
    }
}
