//! Thread-per-core placement policy (DESIGN.md §4.10): config
//! validation, the `Placement` arithmetic the striped structures are
//! laid out with, core-keyed `home_device` routing, and the per-core
//! stats cells folding into one coherent snapshot.

use lci::{Comp, Fabric, Placement, PostResult, Runtime, RuntimeConfig};
use std::sync::Arc;

fn two_ranks(cfg: RuntimeConfig) -> (Runtime, Runtime) {
    let fabric = Fabric::new(2);
    let rt0 = Runtime::new(fabric.clone(), 0, cfg.clone()).unwrap();
    let rt1 = Runtime::new(fabric, 1, cfg).unwrap();
    (rt0, rt1)
}

#[test]
fn placement_math_resolves_cores_and_stripes() {
    // Disabled placement is the single-stripe core-oblivious layout.
    let off = Placement::disabled();
    assert_eq!(off.effective_cores(), 1);
    assert_eq!(off.stripes(), 1);
    // An explicit width wins over detection; stripes round up to a
    // power of two so index masking works.
    assert_eq!(Placement::default().with_cores(3).effective_cores(), 3);
    assert_eq!(Placement::default().with_cores(3).stripes(), 4);
    assert_eq!(Placement::default().with_cores(8).stripes(), 8);
    // Default detects the host map — at least one core, and the stripe
    // count covers it.
    let auto = Placement::default();
    assert!(auto.effective_cores() >= 1);
    assert!(auto.stripes() >= auto.effective_cores());
}

#[test]
fn placement_cores_zero_is_rejected() {
    let cfg = RuntimeConfig::small().with_placement(Placement::default().with_cores(0));
    let err = Runtime::new(Fabric::new(1), 0, cfg).unwrap_err();
    assert!(err.to_string().contains("placement.cores"), "unexpected error: {err}");
}

#[test]
fn placement_cores_over_max_is_rejected() {
    let cfg = RuntimeConfig::small()
        .with_placement(Placement::default().with_cores(lci::topology::MAX_CORES + 1));
    let err = Runtime::new(Fabric::new(1), 0, cfg).unwrap_err();
    assert!(err.to_string().contains("placement.cores"), "unexpected error: {err}");
}

/// With one device, `home_device` is the default device regardless of
/// the calling core; with several, callers spread over the device list
/// keyed by their core, and every core maps to *some* live device.
#[test]
fn home_device_routes_by_core_and_falls_back() {
    let cfg = RuntimeConfig::small().with_placement(Placement::default().with_cores(4));
    let fabric = Fabric::new(1);
    let rt = Runtime::new(fabric, 0, cfg).unwrap();
    assert_eq!(rt.home_device().dev_id(), rt.device().dev_id());

    let extra: Vec<_> = (0..3).map(|_| rt.alloc_device().unwrap()).collect();
    let mut ids: Vec<_> =
        std::iter::once(rt.device().dev_id()).chain(extra.iter().map(|d| d.dev_id())).collect();
    ids.sort_unstable();
    // Each bound core resolves to one of the allocated devices, and
    // the mapping covers more than just device 0 (workers fan out).
    let rt = Arc::new(rt);
    let homes: Vec<_> = (0..4)
        .map(|core| {
            let rt = rt.clone();
            std::thread::spawn(move || {
                lci::topology::bind_current_thread(core);
                rt.home_device().dev_id()
            })
            .join()
            .unwrap()
        })
        .collect();
    for h in &homes {
        assert!(ids.contains(h), "home device {h:?} is not an allocated device");
    }
    let distinct: std::collections::HashSet<_> = homes.iter().collect();
    assert!(distinct.len() > 1, "4 cores over 4 devices all routed to one device: {homes:?}");

    // Placement disabled: always the default device.
    let cfg = RuntimeConfig::small().with_placement(Placement::disabled());
    let rt = Runtime::new(Fabric::new(1), 0, cfg).unwrap();
    let _extra = rt.alloc_device().unwrap();
    assert_eq!(rt.home_device().dev_id(), rt.device().dev_id());
}

/// Striped stats cells must fold into one coherent snapshot: a known
/// eager workload under a 4-core placement reports exactly its own
/// post/match counts, owner-local pool traffic, and an uncontended
/// matching engine (single-threaded harness ⇒ the contended counter
/// stays zero while still being wired up).
#[test]
fn striped_stats_fold_into_one_snapshot() {
    const ITERS: usize = 64;
    let cfg = RuntimeConfig::small().with_placement(Placement::default().with_cores(4));
    let (rt0, rt1) = two_ranks(cfg);
    let base = rt0.device().stats();
    for i in 0..ITERS {
        let tag = 7 + (i % 3) as u32;
        let recv = Comp::alloc_sync(1);
        match rt1.post_recv(0, vec![0u8; 512], tag, recv.clone()).unwrap() {
            PostResult::Posted => {}
            other => panic!("recv did not post: {other:?}"),
        }
        let send = Comp::alloc_sync(1);
        let mut send_pending =
            match rt0.post_send(1, vec![i as u8; 512], tag, send.clone()).unwrap() {
                PostResult::Done(_) => false,
                PostResult::Posted => true,
                PostResult::Retry(r) => panic!("send retried under a quiet harness: {r:?}"),
            };
        let recv_sync = recv.as_sync().unwrap();
        while send_pending || !recv_sync.test() {
            rt0.progress().unwrap();
            rt1.progress().unwrap();
            if send_pending && send.as_sync().unwrap().test() {
                send_pending = false;
            }
        }
    }
    let d = rt0.device().stats().since(&base);
    assert_eq!(d.posts, ITERS as u64, "every post lands in exactly one stripe cell");
    // 512 B rides the buffer-copy path: staging came from the pool, and
    // the single-threaded loop stays on its home shelf.
    assert!(d.buf_pool_hits + d.buf_pool_misses >= ITERS as u64 - 1);
    assert_eq!(d.buf_pool_steals, 0, "single-core traffic never steals");
    let dr = rt1.device().stats();
    assert_eq!(dr.matched, ITERS as u64, "receiver matched every message exactly once");
    assert_eq!(dr.matching_contended, 0, "uncontended harness must not report contention");
}
