//! Progress-engine tests: dedicated progress threads park when idle and
//! wake on doorbells, workers never poll in `Dedicated` mode, and the
//! blocking completion waits (synchronizer, completion queue) lose no
//! wakeups under producer/consumer stress.

use lci::{Comp, CompDesc, CompKind, Fabric, PostResult, ProgressMode, Runtime, RuntimeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn dedicated_cfg() -> RuntimeConfig {
    RuntimeConfig::small().with_progress_mode(ProgressMode::Dedicated(1))
}

/// An idle dedicated engine must park (park count grows) and stop
/// polling (poll count bounded by the occasional safety-timeout wake) —
/// the "no CPU while idle" acceptance check.
#[test]
fn dedicated_engine_parks_while_idle() {
    let fabric = Fabric::new(1);
    let rt = Runtime::new(fabric, 0, dedicated_cfg()).unwrap();
    assert!(rt.progress_engine_active());

    // Let the engine run out its spin/yield ramp and park.
    let deadline = Instant::now() + Duration::from_secs(5);
    while rt.device().stats().progress_parks == 0 {
        assert!(Instant::now() < deadline, "engine never parked");
        std::thread::sleep(Duration::from_millis(5));
    }

    // While idle, parks keep growing (safety-timeout wakes re-park) but
    // polls stay rare: one sweep per ~250 ms timeout wake, nothing else.
    let s1 = rt.device().stats();
    std::thread::sleep(Duration::from_millis(600));
    let s2 = rt.device().stats().since(&s1);
    assert!(s2.progress_parks >= 1, "parked engine stopped parking");
    assert!(
        s2.progress_calls <= 10,
        "idle engine polled {} times in 600ms (should be ~2 timeout wakes)",
        s2.progress_calls
    );
}

/// A doorbell ring (new work) must wake the parked engine promptly, and
/// in `Dedicated` mode the whole exchange must complete with zero
/// worker-side polls — workers block instead.
#[test]
fn doorbell_wakes_parked_engine_and_workers_never_poll() {
    let fabric = Fabric::new(2);
    let mut handles = Vec::new();
    for rank in 0..2 {
        let fabric = fabric.clone();
        handles.push(std::thread::spawn(move || {
            let rt = Runtime::new(fabric, rank, dedicated_cfg()).unwrap();
            rt.oob_barrier();
            // Wait for this rank's engine to park so the exchange below
            // exercises the doorbell wakeup, not a still-spinning thread.
            let deadline = Instant::now() + Duration::from_secs(5);
            while rt.device().stats().progress_parks == 0 {
                assert!(Instant::now() < deadline, "engine never parked");
                std::thread::sleep(Duration::from_millis(5));
            }
            rt.oob_barrier();
            if rank == 0 {
                let comp = Comp::alloc_sync(1);
                let signaled = loop {
                    match rt.post_send(1, vec![7u8; 1024], 9, comp.clone()).unwrap() {
                        PostResult::Done(_) => break false,
                        PostResult::Posted => break true,
                        PostResult::Retry(_) => std::thread::yield_now(),
                    }
                };
                if signaled {
                    // Blocking wait through the runtime's completion
                    // bell (the wait_until blocking path).
                    rt.wait_until(|| comp.as_sync().unwrap().test()).unwrap();
                }
            } else {
                let comp = Comp::alloc_sync(1);
                match rt.post_recv(0, vec![0u8; 4096], 9, comp.clone()).unwrap() {
                    PostResult::Done(_) => {}
                    PostResult::Posted => {
                        // Blocking wait on the synchronizer itself (the
                        // comp-layer doorbell).
                        comp.as_sync().unwrap().wait_blocking();
                        let desc = comp.as_sync().unwrap().take().pop().unwrap();
                        assert_eq!(desc.rank, 0);
                        assert_eq!(desc.data.as_slice(), &[7u8; 1024][..]);
                    }
                    PostResult::Retry(_) => unreachable!("recv never retries"),
                }
            }
            rt.oob_barrier();
            let stats = rt.device().stats();
            assert_eq!(stats.worker_polls, 0, "rank {rank} worker polled in Dedicated mode");
            assert!(stats.progress_calls > 0, "rank {rank} engine never polled");
            assert!(stats.doorbell_rings > 0, "rank {rank} doorbell never rang");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Synchronizer blocking waits: a producer thread signals while the
/// consumer parks in `wait_blocking`; no round may lose its wakeup.
#[test]
fn synchronizer_wait_blocking_stress() {
    const ROUNDS: usize = 2000;
    let syncs: Vec<Arc<lci::Synchronizer>> =
        (0..ROUNDS).map(|_| Arc::new(lci::Synchronizer::new(1))).collect();
    let producer_syncs = syncs.clone();
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for (i, s) in producer_syncs.iter().enumerate() {
            if i % 64 == 0 {
                std::thread::yield_now(); // vary the interleaving
            }
            s.signal(CompDesc { tag: i as u32, kind: CompKind::Send, ..Default::default() });
        }
    });
    for (i, s) in syncs.iter().enumerate() {
        s.wait_blocking();
        let descs = s.take();
        assert_eq!(descs.len(), 1);
        assert_eq!(descs[0].tag, i as u32);
    }
    producer.join().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "blocking waits relied on safety timeouts (lost wakeups)"
    );
}

/// Completion-queue blocking pops: multiple producers push while
/// consumers park in `pop_wait`; every descriptor must be observed
/// without timeout-driven recovery.
#[test]
fn comp_queue_pop_wait_stress() {
    const PRODUCERS: usize = 3;
    const PER: usize = 5000;
    let cq = Comp::alloc_cq();
    let start = Instant::now();
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let cq = cq.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER {
                if i % 128 == 0 {
                    std::thread::yield_now();
                }
                let tag = (p * PER + i) as u32;
                cq.signal(CompDesc { tag, kind: CompKind::Am, ..Default::default() });
            }
        }));
    }
    let consumed = Arc::new(AtomicUsize::new(0));
    let sum = Arc::new(AtomicUsize::new(0));
    for _ in 0..2 {
        let cq = cq.clone();
        let consumed = consumed.clone();
        let sum = sum.clone();
        handles.push(std::thread::spawn(move || {
            while consumed.load(Ordering::Relaxed) < PRODUCERS * PER {
                if let Some(d) = cq.pop_wait(Duration::from_millis(20)) {
                    consumed.fetch_add(1, Ordering::Relaxed);
                    sum.fetch_add(d.tag as usize, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(consumed.load(Ordering::Relaxed), PRODUCERS * PER);
    let expect: usize = (0..PRODUCERS * PER).sum();
    assert_eq!(sum.load(Ordering::Relaxed), expect);
    assert!(start.elapsed() < Duration::from_secs(60));
}

/// `Hybrid`: workers may steal progress while the engine is parked, so
/// a classic polling loop still works — and the engine still parks when
/// everyone is idle.
#[test]
fn hybrid_mode_worker_stealing_roundtrip() {
    let cfg = RuntimeConfig::small().with_progress_mode(ProgressMode::Hybrid(1));
    let fabric = Fabric::new(2);
    let mut handles = Vec::new();
    for rank in 0..2 {
        let fabric = fabric.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let rt = Runtime::new(fabric, rank, cfg).unwrap();
            rt.oob_barrier();
            let comp = Comp::alloc_sync(1);
            if rank == 0 {
                let signaled = loop {
                    match rt.post_send(1, vec![3u8; 512], 4, comp.clone()).unwrap() {
                        PostResult::Done(_) => break false,
                        PostResult::Posted => break true,
                        PostResult::Retry(_) => {
                            rt.device().worker_progress().unwrap();
                        }
                    }
                };
                if signaled {
                    rt.wait_until(|| comp.as_sync().unwrap().test()).unwrap();
                }
            } else {
                match rt.post_recv(0, vec![0u8; 4096], 4, comp.clone()).unwrap() {
                    PostResult::Done(_) => {}
                    PostResult::Posted => {
                        rt.wait_until(|| comp.as_sync().unwrap().test()).unwrap();
                        let desc = comp.as_sync().unwrap().take().pop().unwrap();
                        assert_eq!(desc.data.as_slice(), &[3u8; 512][..]);
                    }
                    PostResult::Retry(_) => unreachable!(),
                }
            }
            rt.oob_barrier();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// An explicitly spawned engine on a `Workers` runtime can be stopped;
/// workers then poll for themselves again.
#[test]
fn manual_spawn_and_stop() {
    let fabric = Fabric::new(1);
    let rt = Runtime::new(fabric, 0, RuntimeConfig::small()).unwrap();
    assert!(!rt.progress_engine_active());
    rt.spawn_progress_threads(2).unwrap();
    assert!(rt.progress_engine_active());
    assert!(rt.spawn_progress_threads(1).is_err(), "double spawn must fail");
    rt.stop_progress_threads();
    assert!(!rt.progress_engine_active());
    // Worker progress works (and counts) once the engine is gone.
    rt.device().worker_progress().unwrap();
    assert!(rt.device().stats().worker_polls > 0);
    // Respawn after stop is allowed.
    rt.spawn_progress_threads(1).unwrap();
    assert!(rt.progress_engine_active());
}
