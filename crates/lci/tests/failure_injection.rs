//! Failure-injection tests: drive the runtime through the paths that
//! only appear under resource exhaustion — tiny RX rings (RxFull
//! retries), tiny packet pools (NoPacket, RNR parking), the backlog
//! queue (`no_retry` posts), and lock-contention retries — and verify
//! that no message is ever lost or duplicated.

use lci::{Comp, CompKind, PostResult, RetryReason, Runtime, RuntimeConfig};
use lci_fabric::sync::LockDiscipline;
use lci_fabric::{DeviceConfig, Fabric};

/// A runtime config starved of every resource.
fn starved() -> RuntimeConfig {
    RuntimeConfig {
        device: DeviceConfig::ibv().with_rx_capacity(4),
        packet: lci::PacketPoolConfig { payload_size: 256, count: 8 },
        eager_size: 256,
        inject_size: 16,
        prepost: 4,
        matching: lci::MatchingConfig { buckets: 4 },
        ..RuntimeConfig::default()
    }
}

#[test]
fn rx_full_surfaces_retry_and_recovers() {
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let n_msgs = 64u32;
    let peer = std::thread::spawn(move || {
        let rt = Runtime::new(f2.clone(), 1, starved()).unwrap();
        f2.oob_barrier();
        // Receive everything, slowly.
        let cq = Comp::alloc_cq();
        let rcomp = rt.register_rcomp(cq.clone());
        assert_eq!(rcomp, 0);
        f2.oob_barrier();
        let mut got = vec![false; n_msgs as usize];
        let mut n = 0;
        while n < n_msgs {
            rt.progress().unwrap();
            if let Some(d) = cq.pop() {
                let idx = d.tag as usize;
                assert!(!got[idx], "duplicate delivery of {idx}");
                got[idx] = true;
                n += 1;
            }
        }
        f2.oob_barrier();
    });

    let rt = Runtime::new(fabric.clone(), 0, starved()).unwrap();
    fabric.oob_barrier();
    let _ = rt.register_rcomp(Comp::alloc_cq());
    fabric.oob_barrier();
    let noop = Comp::alloc_handler(|_| {});
    let mut retries = 0usize;
    for i in 0..n_msgs {
        while let PostResult::Retry(reason) =
            rt.post_am_x(1, [7u8; 32].as_slice(), noop.clone(), 0).tag(i).call().unwrap()
        {
            retries += 1;
            assert!(matches!(
                reason,
                RetryReason::RxFull | RetryReason::LockBusy | RetryReason::NoPacket
            ));
            rt.progress().unwrap();
            std::thread::yield_now();
        }
    }
    // With a 4-slot RX ring and 64 messages, backpressure must appear.
    assert!(retries > 0, "tiny ring should force retries");
    fabric.oob_barrier();
    peer.join().unwrap();
}

#[test]
fn no_retry_mode_parks_in_backlog() {
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let n_msgs = 32u32;
    let peer = std::thread::spawn(move || {
        let rt = Runtime::new(f2.clone(), 1, starved()).unwrap();
        f2.oob_barrier();
        let cq = Comp::alloc_cq();
        f2.oob_barrier(); // sender blasts now
        let mut tags = Vec::new();
        // Receive one tag at a time: a post may complete immediately
        // (`done`, matched an unexpected message — the completion object
        // is NOT signaled) or later through the queue.
        for n in 0..n_msgs {
            match rt.post_recv(0, vec![0u8; 64], n, cq.clone()).unwrap() {
                PostResult::Done(d) => tags.push(d.tag),
                PostResult::Posted => loop {
                    rt.progress().unwrap();
                    if let Some(d) = cq.pop() {
                        tags.push(d.tag);
                        break;
                    }
                },
                PostResult::Retry(_) => unreachable!("recv never retries"),
            }
        }
        tags.sort_unstable();
        assert_eq!(tags, (0..n_msgs).collect::<Vec<_>>());
        f2.oob_barrier();
    });

    let rt = Runtime::new(fabric.clone(), 0, starved()).unwrap();
    fabric.oob_barrier();
    fabric.oob_barrier();
    // Blast with retry disallowed: everything must be accepted
    // (posted), overflowing into the backlog, and eventually delivered
    // by progress.
    let sync = Comp::alloc_sync(n_msgs as usize);
    for i in 0..n_msgs {
        let res = rt.post_send_x(1, vec![i as u8; 32], i, sync.clone()).no_retry().call().unwrap();
        // no_retry: the post may be Done (inject path unavailable at
        // 32B > inject_size, so Posted here) but never Retry.
        assert!(!res.is_retry(), "no_retry must not surface retry");
    }
    assert!(
        rt.device().backlog_len() > 0 || sync.as_sync().unwrap().test(),
        "starved wire should have parked sends in the backlog"
    );
    // Drain everything.
    sync.as_sync().unwrap().wait_with(|| {
        rt.progress().unwrap();
    });
    assert_eq!(rt.device().backlog_len(), 0);
    fabric.oob_barrier();
    peer.join().unwrap();
}

#[test]
fn packet_pool_exhaustion_blocks_prepost_not_correctness() {
    // Pool of 8 packets, prepost target 4: heavy traffic forces the
    // progress engine to run with a starved SRQ (RNR parking).
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let rounds = 40u32;
    let peer = std::thread::spawn(move || {
        let rt = Runtime::new(f2.clone(), 1, starved()).unwrap();
        f2.oob_barrier();
        let cq = Comp::alloc_cq();
        let _ = rt.register_rcomp(cq.clone());
        f2.oob_barrier();
        let mut n = 0;
        let mut held = Vec::new();
        while n < rounds {
            rt.progress().unwrap();
            if let Some(d) = cq.pop() {
                // Hold some packet-backed payloads hostage to starve the
                // pool further, then release them in bursts.
                held.push(d);
                n += 1;
                if held.len() >= 6 {
                    held.clear();
                }
            }
        }
        f2.oob_barrier();
    });

    let rt = Runtime::new(fabric.clone(), 0, starved()).unwrap();
    fabric.oob_barrier();
    let _ = rt.register_rcomp(Comp::alloc_cq());
    fabric.oob_barrier();
    let noop = Comp::alloc_handler(|_| {});
    for i in 0..rounds {
        while let PostResult::Retry(_) =
            rt.post_am_x(1, [1u8; 100].as_slice(), noop.clone(), 0).tag(i).call().unwrap()
        {
            rt.progress().unwrap();
            std::thread::yield_now();
        }
    }
    fabric.oob_barrier();
    peer.join().unwrap();
}

#[test]
fn rendezvous_under_starvation() {
    // Zero-copy messages with a 4-slot ring: RTS/RTR/FIN control
    // messages themselves hit backpressure and must park/retry without
    // corrupting the transfer.
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let peer = std::thread::spawn(move || {
        let rt = Runtime::new(f2.clone(), 1, starved()).unwrap();
        f2.oob_barrier();
        for i in 0..5u32 {
            let comp = Comp::alloc_sync(1);
            let res = rt.post_recv(0, vec![0u8; 8192], i, comp.clone()).unwrap();
            let desc = match res {
                PostResult::Done(d) => d,
                PostResult::Posted => {
                    let s = comp.as_sync().unwrap();
                    while !s.test() {
                        rt.progress().unwrap();
                    }
                    s.take().pop().unwrap()
                }
                PostResult::Retry(_) => unreachable!(),
            };
            assert_eq!(desc.kind, CompKind::Recv);
            assert_eq!(desc.data.len(), 4000);
            assert!(desc.as_slice().iter().all(|&b| b == i as u8));
        }
        f2.oob_barrier();
    });

    let rt = Runtime::new(fabric.clone(), 0, starved()).unwrap();
    fabric.oob_barrier();
    for i in 0..5u32 {
        let comp = Comp::alloc_sync(1);
        loop {
            // 4000 B > eager_size (256): always rendezvous.
            match rt.post_send(1, vec![i as u8; 4000], i, comp.clone()).unwrap() {
                PostResult::Retry(_) => {
                    rt.progress().unwrap();
                }
                PostResult::Posted => break,
                PostResult::Done(_) => unreachable!("rendezvous is never done immediately"),
            }
        }
        comp.as_sync().unwrap().wait_with(|| {
            rt.progress().unwrap();
        });
        let (sends, recvs) = rt.device().pending_rendezvous();
        assert_eq!((sends, recvs), (0, 0), "rendezvous state must drain");
    }
    fabric.oob_barrier();
    peer.join().unwrap();
}

#[test]
fn blocking_discipline_also_correct() {
    // The trylock wrapper is an optimization; with blocking locks the
    // runtime must still be correct (ablation parity).
    let cfg = RuntimeConfig {
        device: DeviceConfig::ibv().with_discipline(LockDiscipline::Blocking),
        ..RuntimeConfig::small()
    };
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let cfg2 = cfg.clone();
    let peer = std::thread::spawn(move || {
        let rt = Runtime::new(f2.clone(), 1, cfg2).unwrap();
        f2.oob_barrier();
        let cq = Comp::alloc_cq();
        rt.post_recv(0, vec![0u8; 1024], 9, cq.clone()).unwrap();
        loop {
            rt.progress().unwrap();
            if let Some(d) = cq.pop() {
                assert_eq!(d.as_slice(), &[3u8; 777][..]);
                break;
            }
        }
        f2.oob_barrier();
    });
    let rt = Runtime::new(fabric.clone(), 0, cfg).unwrap();
    fabric.oob_barrier();
    let comp = Comp::alloc_sync(1);
    loop {
        match rt.post_send(1, vec![3u8; 777], 9, comp.clone()).unwrap() {
            PostResult::Retry(_) => {
                rt.progress().unwrap();
            }
            PostResult::Done(_) => break,
            PostResult::Posted => {
                comp.as_sync().unwrap().wait_with(|| {
                    rt.progress().unwrap();
                });
                break;
            }
        }
    }
    fabric.oob_barrier();
    peer.join().unwrap();
}

#[test]
fn many_devices_per_rank() {
    // Resource replication at scale: 8 devices per rank, round-robin
    // traffic over all of them. The packet pool must cover every
    // device's pre-posted receives (9 devices x 32 prepost here), or the
    // starved devices never deliver — sizing the pool to the device
    // count is the application's responsibility, as with real LCI.
    let cfg = RuntimeConfig {
        packet: lci::PacketPoolConfig { payload_size: 4096, count: 1024 },
        ..RuntimeConfig::small()
    };
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let ndev = 8;
    let cfg2 = cfg.clone();
    let peer = std::thread::spawn(move || {
        let rt = Runtime::new(f2.clone(), 1, cfg2).unwrap();
        let devs: Vec<_> = (0..ndev).map(|_| rt.alloc_device().unwrap()).collect();
        let cq = Comp::alloc_cq();
        let _ = rt.register_rcomp(cq.clone());
        f2.oob_barrier();
        let mut n = 0;
        while n < ndev {
            for d in &devs {
                d.progress().unwrap();
            }
            while let Some(d) = cq.pop() {
                assert_eq!(d.data.len(), 24);
                n += 1;
            }
        }
        f2.oob_barrier();
    });
    let rt = Runtime::new(fabric.clone(), 0, cfg).unwrap();
    let devs: Vec<_> = (0..ndev).map(|_| rt.alloc_device().unwrap()).collect();
    let _ = rt.register_rcomp(Comp::alloc_cq());
    fabric.oob_barrier();
    let noop = Comp::alloc_handler(|_| {});
    for (i, d) in devs.iter().enumerate() {
        while let PostResult::Retry(_) =
            rt.post_am_x(1, vec![i as u8; 24], noop.clone(), 0).device(d).call().unwrap()
        {
            d.progress().unwrap();
        }
    }
    for d in &devs {
        d.progress().unwrap();
    }
    fabric.oob_barrier();
    peer.join().unwrap();
}
