//! Integration and property tests for the chunk-pipelined collectives
//! (`lci::coll`): ring allreduce, binomial broadcast/reduce, Bruck
//! allgather, bounded-inflight alltoall, their non-blocking `i*`
//! variants, and the equivalence of the pipelined engines with the
//! store-and-forward `coll_naive` baselines on awkward shapes
//! (non-power-of-two rank counts, zero-length blocks, block sizes
//! straddling chunk boundaries).

use lci::prelude::*;
use lci::{coll, MaxF32, RuntimeConfig, SumF32, SumU64};
use proptest::prelude::*;
use std::sync::Arc;

fn with_ranks(n: usize, cfg: RuntimeConfig, f: impl Fn(usize, Runtime) + Send + Sync + 'static) {
    with_ranks_ret(n, cfg, f);
}

/// Spawns one runtime per rank and returns each rank's callback result
/// in rank order.
fn with_ranks_ret<T: Send + 'static>(
    n: usize,
    cfg: RuntimeConfig,
    f: impl Fn(usize, Runtime) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let fabric = Fabric::new(n);
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|r| {
            let fabric = fabric.clone();
            let cfg = cfg.clone();
            let f = f.clone();
            std::thread::Builder::new()
                .name(format!("rank{r}"))
                .spawn(move || {
                    let rt = Runtime::new(fabric, r, cfg).unwrap();
                    rt.oob_barrier();
                    f(r, rt)
                })
                .unwrap()
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// A config that forces many small chunks through the ring so the
/// pipeline (not just the algorithm) is exercised.
fn tiny_chunk_cfg(chunk: usize) -> RuntimeConfig {
    RuntimeConfig { coll_chunk_size: chunk, ..RuntimeConfig::small() }
}

#[test]
fn ring_allreduce_multi_chunk_nonpow2() {
    // 5 ranks (non-power-of-two), 999 u64s (not divisible by 5), 64-byte
    // chunks: blocks of 199/200 elements split across ~25 chunks each.
    let n = 5;
    with_ranks(n, tiny_chunk_cfg(64), move |rank, rt| {
        let mut vals: Vec<u64> = (0..999).map(|i| (rank as u64) << 32 | i).collect();
        let mut bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        coll::allreduce(&rt, &mut bytes, &SumU64).unwrap();
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let got = u64::from_le_bytes(chunk.try_into().unwrap());
            let want: u64 = (0..n as u64).map(|r| r << 32 | i as u64).sum();
            assert_eq!(got, want, "element {i}");
        }
        // The engine's new counters moved: rounds were counted and
        // bytes were sent. (`coll_chunks_inflight_hwm` only counts
        // sends still outstanding after posting — tiny eager chunks
        // complete at post time, so it is asserted in the
        // rendezvous-sized test below instead.)
        let stats = rt.device().stats();
        assert!(stats.coll_rounds >= 2 * (n as u64 - 1), "rounds {}", stats.coll_rounds);
        assert!(stats.coll_bytes > 0);
        vals.clear();
    });
}

#[test]
fn ring_allreduce_rendezvous_chunks_pipeline() {
    // Chunks over the 4 KiB eager threshold ride rendezvous, so sends
    // stay genuinely in flight and the window high-water mark must show
    // the pipeline held at least one chunk outstanding.
    with_ranks(3, tiny_chunk_cfg(8 << 10), |rank, rt| {
        let elems = 24 << 10; // 192 KiB -> 64 KiB blocks -> 8 chunks each
        let mut bytes = vec![0u8; elems * 8];
        for (i, c) in bytes.chunks_exact_mut(8).enumerate() {
            c.copy_from_slice(&((rank * 1000 + i) as u64).to_le_bytes());
        }
        coll::allreduce(&rt, &mut bytes, &SumU64).unwrap();
        for (i, c) in bytes.chunks_exact(8).enumerate() {
            let want: u64 = (0..3).map(|r| (r * 1000 + i) as u64).sum();
            assert_eq!(u64::from_le_bytes(c.try_into().unwrap()), want, "element {i}");
        }
        let stats = rt.device().stats();
        assert!(stats.coll_chunks_inflight_hwm >= 1, "hwm {}", stats.coll_chunks_inflight_hwm);
    });
}

#[test]
fn allreduce_f32_ops() {
    with_ranks(4, RuntimeConfig::small(), |rank, rt| {
        let mine = [rank as f32 + 0.5, -(rank as f32)];
        let mut bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
        coll::allreduce(&rt, &mut bytes, &MaxF32).unwrap();
        let got: Vec<f32> =
            bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(got, vec![3.5, 0.0]);

        let mut bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
        coll::allreduce(&rt, &mut bytes, &SumF32).unwrap();
        let got: Vec<f32> =
            bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(got, vec![0.5 + 1.5 + 2.5 + 3.5, -(0.0 + 1.0 + 2.0 + 3.0)]);
    });
}

#[test]
fn broadcast_multi_chunk_streams() {
    // 40 KiB from rank 1 through 512-byte chunks: the root streams ~80
    // chunks to each child while children forward on arrival.
    with_ranks(3, tiny_chunk_cfg(512), |rank, rt| {
        let want: Vec<u8> = (0..40 << 10).map(|i| (i % 251) as u8).collect();
        let mut buf = if rank == 1 { want.clone() } else { vec![0u8; 40 << 10] };
        coll::broadcast_bytes(&rt, 1, &mut buf).unwrap();
        assert_eq!(buf, want);
    });
}

#[test]
fn reduce_only_root_gets_result() {
    with_ranks(4, RuntimeConfig::small(), |rank, rt| {
        let contrib = vec![rank as u64 + 1, 10 * (rank as u64 + 1)];
        let res = coll::reduce_u64(&rt, 2, &contrib, |a, b| a + b).unwrap();
        if rank == 2 {
            assert_eq!(res.unwrap(), vec![10, 100]);
        } else {
            assert!(res.is_none());
        }
    });
}

#[test]
fn allgather_zero_length_blocks() {
    with_ranks(3, RuntimeConfig::small(), |_rank, rt| {
        let mut out = vec![];
        coll::allgather_bytes(&rt, &[], &mut out).unwrap();
        assert!(out.is_empty());

        let all = coll::allgather(&rt, &[]).unwrap();
        assert_eq!(all, vec![Vec::<u8>::new(); 3]);
    });
}

#[test]
fn alltoall_rendezvous_blocks() {
    // Blocks over the small config's 4 KiB eager threshold ride the
    // rendezvous chunk pump; all receives are pre-posted.
    with_ranks(3, RuntimeConfig::small(), |rank, rt| {
        let block = 12 << 10;
        let send: Vec<u8> = (0..3 * block).map(|i| (rank * 64 + i / block) as u8).collect();
        let mut recv = vec![0u8; 3 * block];
        coll::alltoall_bytes(&rt, &send, &mut recv).unwrap();
        for src in 0..3 {
            assert!(
                recv[src * block..(src + 1) * block].iter().all(|&b| b == (src * 64 + rank) as u8),
                "rank {rank} block from {src}"
            );
        }
    });
}

#[test]
fn nonblocking_variants_roundtrip() {
    with_ranks(3, RuntimeConfig::small(), |rank, rt| {
        // ibroadcast
        let buf = if rank == 0 { b"graphcast".to_vec() } else { vec![0u8; 9] };
        let op = coll::ibroadcast(&rt, 0, buf).unwrap();
        assert_eq!(op.wait(&rt).unwrap(), b"graphcast");

        // ireduce (sum to rank 2)
        let op = coll::ireduce_u64(&rt, 2, &[rank as u64, 1], |a, b| a + b).unwrap();
        let res = op.wait(&rt).unwrap();
        if rank == 2 {
            assert_eq!(res.unwrap(), vec![3, 3]);
        } else {
            assert!(res.is_none());
        }

        // iallreduce (max)
        let op = coll::iallreduce_u64(&rt, &[rank as u64 * 7], u64::max).unwrap();
        assert_eq!(op.wait(&rt).unwrap(), vec![14]);

        // iallgather
        let op = coll::iallgather(&rt, &[rank as u8; 4]).unwrap();
        let all = op.wait(&rt).unwrap();
        for (r, blk) in all.iter().enumerate() {
            assert_eq!(blk, &vec![r as u8; 4]);
        }

        // ialltoall
        let send: Vec<Vec<u8>> = (0..3).map(|i| vec![(rank * 10 + i) as u8; 6]).collect();
        let op = coll::ialltoall(&rt, &send).unwrap();
        let recvd = op.wait(&rt).unwrap();
        for (src, blk) in recvd.iter().enumerate() {
            assert_eq!(blk, &vec![(src * 10 + rank) as u8; 6], "from {src}");
        }

        // ibarrier (legacy graph handle)
        let g = coll::ibarrier(&rt).unwrap();
        rt.wait_until(|| g.test()).unwrap();
    });
}

#[test]
fn nonblocking_overlaps_with_sends() {
    // Start an iallgather, run unrelated tagged traffic to completion,
    // then harvest the collective: the graph must make progress in the
    // background rather than monopolize the runtime.
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        let op = coll::iallgather(&rt, &[rank as u8 + 40; 8]).unwrap();

        let peer = 1 - rank;
        let comp = Comp::alloc_sync(1);
        rt.post_send(peer, vec![rank as u8; 32], 7, comp.clone()).unwrap();
        let rcomp = Comp::alloc_sync(1);
        let posted = rt.post_recv(peer, vec![0u8; 32], 7, rcomp.clone()).unwrap();
        if matches!(posted, PostResult::Posted) {
            rt.wait_until(|| rcomp.as_sync().unwrap().test()).unwrap();
        }

        let all = op.wait(&rt).unwrap();
        assert_eq!(all, vec![vec![40u8; 8], vec![41u8; 8]]);
    });
}

// ---------------------------------------------------------------------
// alltoallv
// ---------------------------------------------------------------------

/// Deterministic per-pair fill byte (identifies source, destination,
/// and position, so any misrouted or misordered piece is caught).
fn vpat(src: usize, dst: usize, i: usize) -> u8 {
    (src.wrapping_mul(37) ^ dst.wrapping_mul(11) ^ i) as u8
}

/// Runs one alltoallv over the routing matrix `counts[src][dst]` on
/// every rank, checks each rank's receive buffer against the reference
/// permutation, and returns each rank's `(skipped_pairs, v_bytes_hwm)`.
fn run_v_matrix(cfg: RuntimeConfig, counts: Vec<Vec<usize>>) -> Vec<(u64, u64)> {
    let n = counts.len();
    let counts = Arc::new(counts);
    with_ranks_ret(n, cfg, move |rank, rt| {
        let send_counts = counts[rank].clone();
        let recv_counts: Vec<usize> = (0..n).map(|src| counts[src][rank]).collect();
        let send: Vec<u8> =
            (0..n).flat_map(|dst| (0..send_counts[dst]).map(move |i| vpat(rank, dst, i))).collect();
        let mut recv = vec![0u8; recv_counts.iter().sum()];
        coll::alltoallv(&rt, &send, &send_counts, &mut recv, &recv_counts).unwrap();
        let want: Vec<u8> =
            (0..n).flat_map(|src| (0..recv_counts[src]).map(move |i| vpat(src, rank, i))).collect();
        assert_eq!(recv, want, "rank {rank} receive permutation");
        let stats = rt.device().stats();
        (stats.coll_skipped_pairs, stats.coll_v_bytes_hwm)
    })
}

#[test]
fn alltoallv_sparse_skewed_counts_and_stats() {
    // 4 ranks, 64-byte chunks: a skewed sparse matrix mixing an empty
    // row, zero pairs, inline-sized blocks, one eager block, and one
    // multi-chunk giant block. The engine must skip the zero pairs
    // (counter evidence) and record the per-call payload high-water.
    let counts = vec![
        vec![5, 0, 300, 0], // rank 0: skips 1 and 3
        vec![0, 7, 0, 16],  // rank 1: skips 0 and 2
        vec![9, 0, 0, 130], // rank 2: skips 1 (and its empty diagonal)
        vec![0, 0, 0, 0],   // rank 3: sends nothing at all
    ];
    let totals: Vec<u64> = counts.iter().map(|row| row.iter().sum::<usize>() as u64).collect();
    let stats = run_v_matrix(tiny_chunk_cfg(64), counts);
    for (rank, &(skipped, hwm)) in stats.iter().enumerate() {
        let want_skipped = [2u64, 2, 1, 3][rank];
        assert_eq!(skipped, want_skipped, "rank {rank} skipped pairs");
        assert_eq!(hwm, totals[rank], "rank {rank} v-bytes high-water");
    }
}

#[test]
fn alltoallv_over_shm_device() {
    // The same engine across the in-process shm rings (eager + the
    // shm rendezvous chunk path for the large block).
    let cfg = tiny_chunk_cfg(1 << 10).with_device(lci_fabric::DeviceConfig::shm());
    run_v_matrix(
        cfg,
        vec![vec![0, 3000, 1, 0], vec![40, 40, 40, 40], vec![0, 0, 0, 0], vec![7000, 0, 2, 9]],
    );
}

#[test]
fn alltoallv_counts_learns_recv_side() {
    // The MoE-dispatch case: every rank knows only where it routes
    // bytes *to*; the count exchange must learn the transpose, and the
    // learned vector must drive a correct alltoallv.
    let n = 4;
    with_ranks(n, RuntimeConfig::small(), move |rank, rt| {
        let send_counts: Vec<usize> = (0..n).map(|dst| (rank * 7 + dst * 3) % 5 * 10).collect();
        let recv_counts = coll::alltoallv_counts(&rt, &send_counts).unwrap();
        for (src, &c) in recv_counts.iter().enumerate() {
            assert_eq!(c, (src * 7 + rank * 3) % 5 * 10, "rank {rank} learned count from {src}");
        }
        let send: Vec<u8> =
            (0..n).flat_map(|dst| (0..send_counts[dst]).map(move |i| vpat(rank, dst, i))).collect();
        let mut recv = vec![0u8; recv_counts.iter().sum()];
        coll::alltoallv(&rt, &send, &send_counts, &mut recv, &recv_counts).unwrap();
        let want: Vec<u8> =
            (0..n).flat_map(|src| (0..recv_counts[src]).map(move |i| vpat(src, rank, i))).collect();
        assert_eq!(recv, want, "rank {rank}");
    });
}

#[test]
fn alltoallv_rejects_bad_shapes() {
    with_ranks(2, RuntimeConfig::small(), |_rank, rt| {
        let mut recv = vec![0u8; 2];
        // Wrong count-vector length.
        assert!(coll::alltoallv(&rt, &[0; 2], &[1, 1, 1], &mut recv, &[1, 1]).is_err());
        // Buffer shorter than its count sum.
        assert!(coll::alltoallv(&rt, &[0; 1], &[1, 1], &mut recv, &[1, 1]).is_err());
        // Self block disagrees between the two vectors.
        assert!(coll::alltoallv(&rt, &[0; 3], &[2, 1], &mut recv, &[1, 1]).is_err());
    });
}

#[test]
fn ialltoallv_nonblocking_with_unknown_counts() {
    // The graph variant learns the landing sizes itself (count round
    // chained into the data round); zero pairs resolve to empty blocks.
    let n = 3;
    with_ranks(n, RuntimeConfig::small(), move |rank, rt| {
        let send: Vec<Vec<u8>> = (0..n)
            .map(|dst| {
                let len = [0usize, 5, 4200][(rank + dst) % 3];
                (0..len).map(|i| vpat(rank, dst, i)).collect()
            })
            .collect();
        let op = coll::ialltoallv(&rt, &send).unwrap();
        let recvd = op.wait(&rt).unwrap();
        for (src, blk) in recvd.iter().enumerate() {
            let len = [0usize, 5, 4200][(src + rank) % 3];
            let want: Vec<u8> = (0..len).map(|i| vpat(src, rank, i)).collect();
            assert_eq!(blk, &want, "rank {rank} block from {src}");
        }
    });
}

/// Deterministic adversarial routing matrices for the equivalence
/// proptest: `shape` selects the family, `chunk` anchors the ragged
/// sizes at chunk-boundary straddles.
fn adversarial_matrix(shape: usize, n: usize, chunk: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; n]; n];
    match shape {
        // All blocks empty (the exchange must still terminate).
        0 => {}
        // One giant multi-chunk block, everything else empty.
        1 => m[seed as usize % n][(seed as usize + 1) % n] = 4 * chunk + 3,
        // All-to-one skew: every rank routes only to one hot rank.
        2 => {
            let hot = seed as usize % n;
            for (src, row) in m.iter_mut().enumerate() {
                row[hot] = chunk * src + src + 1;
            }
        }
        // Ragged chunk straddles: every pair k*chunk + {-1, 0, +1}.
        3 => {
            for (src, row) in m.iter_mut().enumerate() {
                for (dst, c) in row.iter_mut().enumerate() {
                    let k = 1 + (src + dst) % 3;
                    *c = (k * chunk + (src * n + dst) % 3) - 1;
                }
            }
        }
        // Sparse pseudo-random: ~half the pairs zero, sizes spanning
        // inline, eager, and chunked.
        _ => {
            let mut x = seed | 1;
            for row in m.iter_mut() {
                for c in row.iter_mut() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    *c = if x & 2 == 0 { 0 } else { (x >> 33) as usize % (3 * chunk) };
                }
            }
            // Diagonal must agree with itself, which it trivially does.
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..Default::default() })]

    /// The pipelined alltoallv engine matches the reference permutation
    /// (and the `coll_naive` store-and-forward ablation matches it too)
    /// across adversarial shapes — all-empty, one giant block,
    /// all-to-one skew, ragged chunk straddles, sparse random — on the
    /// sim transport, with the shm device covering a sample of shapes.
    #[test]
    fn alltoallv_matches_reference(
        n in 2usize..5,
        shape in 0usize..5,
        chunk_u64s in 1usize..5,
        seed in 0u64..1u64 << 32,
    ) {
        let chunk = chunk_u64s * 8;
        let m = adversarial_matrix(shape, n, chunk, seed);
        run_v_matrix(tiny_chunk_cfg(chunk), m.clone());
        run_v_matrix(
            RuntimeConfig { coll_naive: true, ..RuntimeConfig::small() },
            m.clone(),
        );
        if seed % 3 == 0 {
            run_v_matrix(
                tiny_chunk_cfg(chunk).with_device(lci_fabric::DeviceConfig::shm()),
                m,
            );
        }
    }
}

/// Runs one fixed scenario (allreduce + allgather + alltoall) across
/// `n` ranks and returns rank 0's observed outputs.
fn run_scenario(n: usize, cfg: RuntimeConfig, elems: usize, block: usize) -> Vec<Vec<u8>> {
    let out = with_ranks_ret(n, cfg, move |rank, rt| {
        // Allreduce: position-tagged contributions, sum.
        let vals: Vec<u64> = (0..elems).map(|i| (rank as u64 + 1) * (i as u64 + 1)).collect();
        let mut ar: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        coll::allreduce(&rt, &mut ar, &SumU64).unwrap();

        // Allgather: per-rank fill pattern.
        let mine: Vec<u8> = (0..block).map(|i| (rank * 31 + i) as u8).collect();
        let mut ag = vec![0u8; block * n];
        coll::allgather_bytes(&rt, &mine, &mut ag).unwrap();

        // Alltoall: (src, dst)-tagged blocks.
        let send: Vec<u8> =
            (0..block * n).map(|i| (rank * 17 + (i / block.max(1)) * 5 + i) as u8).collect();
        let mut a2a = vec![0u8; block * n];
        coll::alltoall_bytes(&rt, &send, &mut a2a).unwrap();

        vec![ar, ag, a2a]
    });
    out.into_iter().next().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..Default::default() })]

    /// The pipelined engines and the `coll_naive` baselines compute the
    /// same results on awkward shapes: non-power-of-two rank counts,
    /// zero-length payloads, and block sizes straddling multiples of
    /// the chunk size (k*chunk - 1, k*chunk, k*chunk + 1).
    #[test]
    fn pipelined_matches_naive(
        n in 2usize..6,
        chunk_elems in 1usize..5,
        k in 0usize..4,
        off in 0i64..3,
    ) {
        let chunk = chunk_elems * 8;
        let elems = ((k * chunk_elems) as i64 + off - 1).max(0) as usize;
        let block = elems * 8;
        let pipelined = run_scenario(
            n,
            RuntimeConfig { coll_chunk_size: chunk, ..RuntimeConfig::small() },
            elems,
            block,
        );
        let naive = run_scenario(
            n,
            RuntimeConfig { coll_naive: true, ..RuntimeConfig::small() },
            elems,
            block,
        );
        prop_assert_eq!(pipelined, naive);
    }
}
