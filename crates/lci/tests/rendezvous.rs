//! Large-message pipeline tests (DESIGN.md §4.6): chunk-boundary edge
//! cases, chunked/monolithic equivalence (including gathered iovec
//! sends), multithreaded rendezvous over the sharded state tables, and
//! registration-cache steady-state behaviour.

use lci::{Comp, CompKind, Fabric, PostResult, Runtime, RuntimeConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// A small config with a tiny rendezvous chunk so modest payloads span
/// many chunks.
fn chunked_cfg(chunk: usize, inflight: usize) -> RuntimeConfig {
    RuntimeConfig { rdv_chunk_size: chunk, rdv_max_inflight: inflight, ..RuntimeConfig::small() }
}

/// Runs `f(rank, runtime)` on `n` rank-threads over one fabric.
fn with_ranks(n: usize, cfg: RuntimeConfig, f: impl Fn(usize, Runtime) + Send + Sync + 'static) {
    let fabric = Fabric::new(n);
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|r| {
            let fabric = fabric.clone();
            let cfg = cfg.clone();
            let f = f.clone();
            std::thread::Builder::new()
                .name(format!("rank{r}"))
                .spawn(move || {
                    let rt = Runtime::new(fabric, r, cfg).unwrap();
                    rt.oob_barrier();
                    f(r, rt);
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Sends `buf` (any `Into<SendBuf>`) to `rank` with `tag`, blocking on
/// completion; returns the descriptor (with the buffer handed back).
fn send_blocking(
    rt: &Runtime,
    rank: usize,
    buf: impl Into<lci::SendBuf> + Clone,
    tag: u32,
) -> lci::CompDesc {
    let comp = Comp::alloc_sync(1);
    loop {
        match rt.post_send(rank, buf.clone(), tag, comp.clone()).unwrap() {
            PostResult::Done(d) => return d,
            PostResult::Posted => {
                let sync = comp.as_sync().unwrap();
                while !sync.test() {
                    rt.progress().unwrap();
                }
                return sync.take().pop().unwrap();
            }
            PostResult::Retry(_) => {
                rt.progress().unwrap();
            }
        }
    }
}

/// Receives one message of at most `size` bytes from `rank` with `tag`.
fn recv_blocking(rt: &Runtime, rank: usize, size: usize, tag: u32) -> lci::CompDesc {
    let comp = Comp::alloc_sync(1);
    match rt.post_recv(rank, vec![0u8; size], tag, comp.clone()).unwrap() {
        PostResult::Done(d) => d,
        PostResult::Posted => {
            let sync = comp.as_sync().unwrap();
            while !sync.test() {
                rt.progress().unwrap();
            }
            sync.take().pop().unwrap()
        }
        PostResult::Retry(_) => unreachable!("recv never retries"),
    }
}

/// A deterministic non-constant payload so chunk reordering or
/// misplacement cannot cancel out.
fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
}

/// Sizes straddling chunk boundaries arrive intact: exactly k chunks,
/// k chunks ± 1 byte, and payloads smaller than one chunk.
#[test]
fn chunk_boundary_sizes() {
    // (chunk size, payload sizes). 4 KiB eager threshold from small();
    // every size below is a rendezvous transfer.
    let chunk = 1024usize;
    let sizes: Vec<usize> = vec![
        8 * chunk,     // exactly k chunks
        8 * chunk - 1, // one byte short of a boundary: short last chunk
        8 * chunk + 1, // one byte past: 1-byte last chunk carries the FIN
        5 * chunk,
        4 * chunk + 1,
        5000, // > eager, spans 5 chunks of 1 KiB
    ];
    let sizes2 = sizes.clone();
    with_ranks(2, chunked_cfg(chunk, 3), move |rank, rt| {
        for (i, &size) in sizes2.iter().enumerate() {
            let tag = i as u32;
            if rank == 0 {
                let d = send_blocking(&rt, 1, pattern(size, i as u8), tag);
                assert_eq!(d.kind, CompKind::Send);
            } else {
                let d = recv_blocking(&rt, 0, sizes2.iter().max().unwrap() + 64, tag);
                assert_eq!(d.data.len(), size);
                assert_eq!(d.as_slice(), &pattern(size, i as u8)[..]);
            }
            rt.oob_barrier();
        }
    });

    // Payload smaller than one (default 64 KiB) chunk: single-write path.
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        if rank == 0 {
            send_blocking(&rt, 1, pattern(5000, 99), 7);
        } else {
            let d = recv_blocking(&rt, 0, 8192, 7);
            assert_eq!(d.as_slice(), &pattern(5000, 99)[..]);
        }
        rt.oob_barrier();
    });
}

/// The chunk-boundary suite over the shared-memory transport: chunk
/// RDMA writes become spilled ring frames applied to registered memory
/// at drain time, and the FIN still arrives strictly after every chunk.
#[test]
fn chunk_boundary_sizes_over_shm() {
    let chunk = 1024usize;
    let sizes: Vec<usize> = vec![8 * chunk, 8 * chunk - 1, 8 * chunk + 1, 5000];
    let sizes2 = sizes.clone();
    let cfg = chunked_cfg(chunk, 3).with_device(lci_fabric::DeviceConfig::shm());
    with_ranks(2, cfg, move |rank, rt| {
        for (i, &size) in sizes2.iter().enumerate() {
            let tag = i as u32;
            if rank == 0 {
                let d = send_blocking(&rt, 1, pattern(size, i as u8), tag);
                assert_eq!(d.kind, CompKind::Send);
            } else {
                let d = recv_blocking(&rt, 0, sizes2.iter().max().unwrap() + 64, tag);
                assert_eq!(d.data.len(), size);
                assert_eq!(d.as_slice(), &pattern(size, i as u8)[..]);
            }
            rt.oob_barrier();
        }
    });

    // A 256 KiB transfer with the default 64 KiB chunks: each chunk
    // frame spills (64 KiB ≫ the inline cap) and reclaims in FIFO order.
    let big = 256 << 10;
    with_ranks(
        2,
        RuntimeConfig::small().with_device(lci_fabric::DeviceConfig::shm()),
        move |rank, rt| {
            if rank == 0 {
                send_blocking(&rt, 1, pattern(big, 9), 77);
            } else {
                let d = recv_blocking(&rt, 0, big + 64, 77);
                assert_eq!(d.data.len(), big);
                assert_eq!(d.as_slice(), &pattern(big, 9)[..]);
                assert!(rt.device().stats().shm_ring_hwm > 0, "shm transport unused");
            }
            rt.oob_barrier();
        },
    );
}

/// With chunking disabled the pipeline degenerates to one write per
/// transfer (the pre-pipeline behaviour), still correct.
#[test]
fn chunking_off_single_write_per_transfer() {
    let cfg = RuntimeConfig { rdv_chunking: false, ..RuntimeConfig::small() };
    with_ranks(2, cfg, |rank, rt| {
        let n = 4u32;
        if rank == 0 {
            for i in 0..n {
                send_blocking(&rt, 1, pattern(20_000, i as u8), i);
            }
            let s = rt.device().stats();
            assert_eq!(s.rdv_chunks_posted, n as u64, "one write per transfer");
            assert!(s.rdv_inflight_hwm <= 1);
        } else {
            for i in 0..n {
                let d = recv_blocking(&rt, 0, 20_064, i);
                assert_eq!(d.as_slice(), &pattern(20_000, i as u8)[..]);
            }
        }
        rt.oob_barrier();
    });
}

/// Gathered iovec rendezvous reuses its scratch ring instead of
/// allocating per chunk.
#[test]
fn iovec_scratch_ring_reuse() {
    with_ranks(2, chunked_cfg(1024, 2), |rank, rt| {
        if rank == 0 {
            // 8 chunks, 2 in flight: at least 6 chunk posts reuse a slot.
            let segs: Vec<Box<[u8]>> =
                (0..4).map(|s| pattern(2048, s as u8).into_boxed_slice()).collect();
            send_blocking(&rt, 1, segs, 0);
            let s = rt.device().stats();
            assert_eq!(s.rdv_chunks_posted, 8);
            assert!(s.rdv_scratch_reuses >= 6, "scratch reuses: {}", s.rdv_scratch_reuses);
        } else {
            let d = recv_blocking(&rt, 0, 8256, 0);
            let mut expect = Vec::new();
            for s in 0..4u8 {
                expect.extend_from_slice(&pattern(2048, s));
            }
            assert_eq!(d.as_slice(), &expect[..]);
        }
        rt.oob_barrier();
    });
}

/// Many threads per rank drive concurrent rendezvous transfers through
/// the sharded send/receive tables; every payload arrives intact and
/// the pipeline counters reflect overlapped chunks.
#[test]
fn multithreaded_rendezvous_stress() {
    let cfg = RuntimeConfig { rdv_shards: 4, ..chunked_cfg(1024, 4) };
    with_ranks(2, cfg, |rank, rt| {
        let nthreads = 4usize;
        let iters = 12u32;
        let size = 12_000usize;
        let workers: Vec<_> = (0..nthreads)
            .map(|t| {
                let rt = rt.clone();
                std::thread::spawn(move || {
                    let peer = 1 - rank;
                    for i in 0..iters {
                        let tag = (t as u32) << 16 | i;
                        let seed = (t as u8).wrapping_mul(17).wrapping_add(i as u8);
                        if rank == 0 {
                            send_blocking(&rt, peer, pattern(size, seed), tag);
                        } else {
                            let d = recv_blocking(&rt, peer, size + 64, tag);
                            assert_eq!(d.as_slice(), &pattern(size, seed)[..]);
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        if rank == 0 {
            let s = rt.device().stats();
            let transfers = (nthreads as u64) * iters as u64;
            assert_eq!(s.rendezvous - s.rendezvous_retried, transfers);
            // 12000 B / 1 KiB chunks = 12 chunks per transfer.
            assert_eq!(s.rdv_chunks_posted, transfers * 12);
            assert!(s.rdv_inflight_hwm >= 2, "pipelining overlapped chunks");
        }
        // Drain any in-flight FIN/ACK traffic before teardown.
        rt.oob_barrier();
        for _ in 0..50 {
            rt.progress().unwrap();
        }
        rt.oob_barrier();
    });
}

/// Steady-state registration-cache behaviour: a receive buffer reused
/// across transfers registers once and hits thereafter (>90% hit rate).
#[test]
fn reg_cache_steady_state_hit_rate() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        let iters = 50u32;
        let size = 16_384usize;
        if rank == 0 {
            for i in 0..iters {
                send_blocking(&rt, 1, pattern(size, i as u8), i);
            }
        } else {
            // Recycle the delivered buffer into the next post so the
            // (ptr, len) registration key repeats.
            let mut buf = vec![0u8; size];
            for i in 0..iters {
                let comp = Comp::alloc_sync(1);
                let res = rt.post_recv(0, buf, i, comp.clone()).unwrap();
                let desc = match res {
                    PostResult::Done(d) => d,
                    PostResult::Posted => {
                        let sync = comp.as_sync().unwrap();
                        while !sync.test() {
                            rt.progress().unwrap();
                        }
                        sync.take().pop().unwrap()
                    }
                    PostResult::Retry(_) => unreachable!(),
                };
                assert_eq!(desc.as_slice(), &pattern(size, i as u8)[..]);
                buf = desc.data.into_vec();
                assert_eq!(buf.len(), size);
            }
            let s = rt.device().stats();
            assert_eq!(s.reg_cache_hits + s.reg_cache_misses, iters as u64);
            assert!(
                s.reg_cache_hit_rate() > 0.9,
                "steady-state hit rate {:.2} (hits {} misses {})",
                s.reg_cache_hit_rate(),
                s.reg_cache_hits,
                s.reg_cache_misses
            );
        }
        rt.oob_barrier();
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Equivalence: a rendezvous iovec payload delivered through the
    /// chunked pipeline is byte-identical to the same payload delivered
    /// monolithically (chunking off).
    #[test]
    fn iovec_chunked_equals_monolithic(
        segs in proptest::collection::vec((any::<u8>(), 0usize..4000), 1..6),
        chunk_pow in 9u32..12, // 512 B .. 2 KiB chunks
    ) {
        // Force past the 4 KiB eager threshold so rendezvous triggers.
        let mut segs = segs;
        segs.push((0xEE, 6000));
        let expected: Vec<u8> = segs
            .iter()
            .flat_map(|&(seed, len)| pattern(len, seed))
            .collect();
        let total = expected.len();

        for chunked in [true, false] {
            let cfg = RuntimeConfig {
                rdv_chunking: chunked,
                rdv_chunk_size: 1usize << chunk_pow,
                rdv_max_inflight: 3,
                ..RuntimeConfig::small()
            };
            let segs = segs.clone();
            let expected = expected.clone();
            with_ranks(2, cfg, move |rank, rt| {
                if rank == 0 {
                    let bufs: Vec<Box<[u8]>> = segs
                        .iter()
                        .map(|&(seed, len)| pattern(len, seed).into_boxed_slice())
                        .collect();
                    send_blocking(&rt, 1, bufs, 1);
                } else {
                    let d = recv_blocking(&rt, 0, total + 64, 1);
                    assert_eq!(d.as_slice(), &expected[..], "chunking={chunked}");
                }
                rt.oob_barrier();
            });
        }
    }
}
