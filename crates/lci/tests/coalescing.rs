//! Sender-side coalescing correctness: a multithreaded streaming
//! workload must observe *identical* matching order and completion
//! counts whether coalescing is on or off (the feature is transparent),
//! and the per-message `.allow_coalescing(false)` opt-out must force
//! individual posts.

use lci::{CoalesceConfig, Comp, PostResult, Runtime, RuntimeConfig, StatsSnapshot};
use lci_fabric::Fabric;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const THREADS: usize = 4;
const MSGS: usize = 200;

/// Posts one receive and waits for it. With `drive` the waiting thread
/// turns the progress engine itself; without it the thread only yields,
/// relying on a dedicated progress thread. Matching order is only
/// well-defined when a single thread drains the CQ — concurrent
/// `progress()` callers may interleave poll batches (the runtime, like
/// LCI, does not order matching across progress threads).
fn recv_one(rt: &Runtime, rank: usize, size: usize, tag: u32, drive: bool) -> lci::CompDesc {
    let comp = Comp::alloc_sync(1);
    match rt.post_recv(rank, vec![0u8; size], tag, comp.clone()).unwrap() {
        PostResult::Done(desc) => desc,
        PostResult::Posted => {
            let sync = comp.as_sync().unwrap();
            while !sync.test() {
                if drive {
                    rt.progress().unwrap();
                } else {
                    std::thread::yield_now();
                }
            }
            sync.take().pop().unwrap()
        }
        PostResult::Retry(_) => unreachable!(),
    }
}

/// Streams `MSGS` 8-byte messages per sender thread (tag = thread id)
/// from rank 0 to rank 1. Returns the per-tag payload sequences the
/// receiver observed, the sender-side completion count, and the sender
/// device's stats.
fn run(cfg: RuntimeConfig) -> (Vec<Vec<u64>>, usize, StatsSnapshot) {
    let fabric = Fabric::new(2);
    let receiver_done = Arc::new(AtomicBool::new(false));

    let f2 = fabric.clone();
    let cfg2 = cfg.clone();
    let done2 = receiver_done.clone();
    let receiver = std::thread::spawn(move || {
        let rt = Runtime::new(f2, 1, cfg2).unwrap();
        rt.oob_barrier();
        // Exactly one thread drains the CQ: per-tag matching order is
        // only defined when progress is single-threaded (see recv_one).
        let recvs_done = Arc::new(AtomicBool::new(false));
        let progress = {
            let rt = rt.clone();
            let done = recvs_done.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    rt.progress().unwrap();
                }
            })
        };
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let rt = rt.clone();
                std::thread::spawn(move || {
                    let mut seqs = Vec::with_capacity(MSGS);
                    for _ in 0..MSGS {
                        let desc = recv_one(&rt, 0, 64, t as u32, false);
                        assert_eq!(desc.rank, 0);
                        assert_eq!(desc.data.len(), 8);
                        seqs.push(u64::from_le_bytes(desc.as_slice().try_into().unwrap()));
                    }
                    seqs
                })
            })
            .collect();
        let seqs: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        recvs_done.store(true, Ordering::Release);
        progress.join().unwrap();
        done2.store(true, Ordering::Release);
        seqs
    });

    let rt = Runtime::new(fabric, 0, cfg).unwrap();
    rt.oob_barrier();
    let completed = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let rt = rt.clone();
            let completed = completed.clone();
            std::thread::spawn(move || {
                for seq in 0..MSGS as u64 {
                    let comp = Comp::alloc_sync(1);
                    loop {
                        let buf = seq.to_le_bytes().to_vec();
                        match rt.post_send(1, buf, t as u32, comp.clone()).unwrap() {
                            PostResult::Done(_) => break,
                            PostResult::Posted => {
                                comp.as_sync().unwrap().wait_with(|| {
                                    rt.progress().unwrap();
                                });
                                break;
                            }
                            PostResult::Retry(_) => {
                                rt.progress().unwrap();
                            }
                        }
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Keep the progress engine turning so the idle auto-flush drains any
    // sub-messages still buffered when the sender threads finished.
    while !receiver_done.load(Ordering::Acquire) {
        rt.progress().unwrap();
    }
    let stats = rt.device().stats();
    (receiver.join().unwrap(), completed.load(Ordering::Relaxed), stats)
}

#[test]
fn matching_order_and_counts_identical_on_vs_off() {
    let off = run(RuntimeConfig::small());
    let mut on_cfg = RuntimeConfig::small();
    on_cfg.coalesce = CoalesceConfig::enabled_with_bytes(2048);
    let on = run(on_cfg);

    let expect: Vec<u64> = (0..MSGS as u64).collect();
    for t in 0..THREADS {
        assert_eq!(off.0[t], expect, "uncoalesced: tag {t} out of order");
        assert_eq!(on.0[t], expect, "coalesced: tag {t} out of order");
    }
    assert_eq!(off.1, THREADS * MSGS);
    assert_eq!(on.1, THREADS * MSGS);
    // The coalesced run actually exercised the new path; the baseline
    // never did.
    assert_eq!(off.2.coalesced_msgs, 0);
    assert!(on.2.coalesced_msgs > 0, "coalescing enabled but never used");
    assert!(on.2.coalesce_flushes > 0);
    assert!(
        on.2.coalesce_flushes < on.2.coalesced_msgs,
        "frames should carry more than one sub-message on average"
    );
}

/// The same on-vs-off equivalence, carried by the shared-memory
/// transport (in-process mode): the coalesce path's frames must survive
/// the ring codec byte-for-byte and in order.
#[test]
fn matching_order_identical_on_shm_transport() {
    let off = run(RuntimeConfig::small().with_device(lci_fabric::DeviceConfig::shm()));
    let mut on_cfg = RuntimeConfig::small().with_device(lci_fabric::DeviceConfig::shm());
    on_cfg.coalesce = CoalesceConfig::enabled_with_bytes(2048);
    let on = run(on_cfg);

    let expect: Vec<u64> = (0..MSGS as u64).collect();
    for t in 0..THREADS {
        assert_eq!(off.0[t], expect, "shm uncoalesced: tag {t} out of order");
        assert_eq!(on.0[t], expect, "shm coalesced: tag {t} out of order");
    }
    assert_eq!(off.1, THREADS * MSGS);
    assert_eq!(on.1, THREADS * MSGS);
    assert!(on.2.coalesced_msgs > 0, "coalescing enabled but never used");
    // The traffic really crossed the shm rings.
    assert!(off.2.shm_ring_hwm > 0, "shm transport unused by the workload");
}

#[test]
fn per_message_opt_out_bypasses_coalescing() {
    let mut cfg = RuntimeConfig::small();
    cfg.coalesce = CoalesceConfig::enabled_with_bytes(2048);
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let cfg2 = cfg.clone();
    let receiver = std::thread::spawn(move || {
        let rt = Runtime::new(f2, 1, cfg2).unwrap();
        rt.oob_barrier();
        for i in 0..20u64 {
            let desc = recv_one(&rt, 0, 64, 3, true);
            assert_eq!(u64::from_le_bytes(desc.as_slice().try_into().unwrap()), i);
        }
    });
    let rt = Runtime::new(fabric, 0, cfg).unwrap();
    rt.oob_barrier();
    for i in 0..20u64 {
        let comp = Comp::alloc_sync(1);
        loop {
            let ret = rt
                .post_send_x(1, i.to_le_bytes().to_vec(), 3, comp.clone())
                .allow_coalescing(false)
                .call()
                .unwrap();
            match ret {
                PostResult::Done(_) => break,
                PostResult::Posted => {
                    comp.as_sync().unwrap().wait_with(|| {
                        rt.progress().unwrap();
                    });
                    break;
                }
                PostResult::Retry(_) => {
                    rt.progress().unwrap();
                }
            }
        }
    }
    receiver.join().unwrap();
    let stats = rt.device().stats();
    assert_eq!(stats.coalesced_msgs, 0, "opted-out messages must post individually");
}
