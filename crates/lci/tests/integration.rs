//! Cross-rank integration tests for the LCI runtime: every protocol path
//! (inject / buffer-copy / zero-copy rendezvous), every paradigm of paper
//! Table 1, completion objects, matching policies, and multithreaded use.

use lci::collective;
use lci::{Comp, CompKind, Direction, Fabric, MatchingPolicy, PostResult, Runtime, RuntimeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs `f(rank, runtime)` on `n` rank-threads over one fabric.
fn with_ranks(n: usize, cfg: RuntimeConfig, f: impl Fn(usize, Runtime) + Send + Sync + 'static) {
    let fabric = Fabric::new(n);
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|r| {
            let fabric = fabric.clone();
            let cfg = cfg.clone();
            let f = f.clone();
            std::thread::Builder::new()
                .name(format!("rank{r}"))
                .spawn(move || {
                    let rt = Runtime::new(fabric, r, cfg).unwrap();
                    rt.oob_barrier(); // all devices exist before traffic
                    f(r, rt);
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn send_until_accepted(rt: &Runtime, rank: usize, data: Vec<u8>, tag: u32, comp: Comp) -> bool {
    // Returns true if the completion object will be signaled.
    loop {
        match rt.post_send(rank, data.clone(), tag, comp.clone()).unwrap() {
            PostResult::Done(_) => return false,
            PostResult::Posted => return true,
            PostResult::Retry(_) => {
                rt.progress().unwrap();
            }
        }
    }
}

fn recv_one(rt: &Runtime, rank: usize, size: usize, tag: u32) -> lci::CompDesc {
    let comp = Comp::alloc_sync(1);
    match rt.post_recv(rank, vec![0u8; size], tag, comp.clone()).unwrap() {
        PostResult::Done(desc) => desc,
        PostResult::Posted => {
            let sync = comp.as_sync().unwrap();
            while !sync.test() {
                rt.progress().unwrap();
            }
            sync.take().pop().unwrap()
        }
        PostResult::Retry(_) => unreachable!(),
    }
}

#[test]
fn sendrecv_all_protocol_sizes() {
    // 8 B (inject), 1 KiB (bcopy), 64 KiB (rendezvous zero-copy).
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        for (i, size) in [8usize, 1024, 65536].into_iter().enumerate() {
            let tag = 100 + i as u32;
            let pattern = (i as u8).wrapping_add(7);
            if rank == 0 {
                let comp = Comp::alloc_sync(1);
                let signaled = send_until_accepted(&rt, 1, vec![pattern; size], tag, comp.clone());
                if signaled {
                    comp.as_sync().unwrap().wait_with(|| {
                        rt.progress().unwrap();
                    });
                }
            } else {
                let desc = recv_one(&rt, 0, size, tag);
                assert_eq!(desc.rank, 0);
                assert_eq!(desc.tag, tag);
                assert_eq!(desc.kind, CompKind::Recv);
                assert_eq!(desc.data.len(), size);
                assert!(desc.as_slice().iter().all(|&b| b == pattern));
            }
            rt.oob_barrier();
        }
    });
}

#[test]
fn recv_posted_before_and_after_send() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        if rank == 0 {
            // Unexpected path: send first, receiver posts later.
            let c = Comp::alloc_sync(1);
            if send_until_accepted(&rt, 1, vec![1u8; 300], 1, c.clone()) {
                c.as_sync().unwrap().wait_with(|| {
                    rt.progress().unwrap();
                });
            }
            rt.oob_barrier();
            // Expected path: receiver already posted (barrier ordered it).
            rt.oob_barrier();
            let c = Comp::alloc_sync(1);
            if send_until_accepted(&rt, 1, vec![2u8; 300], 2, c.clone()) {
                c.as_sync().unwrap().wait_with(|| {
                    rt.progress().unwrap();
                });
            }
        } else {
            rt.oob_barrier(); // let the unexpected send land first
                              // Drain it into the matching engine.
            for _ in 0..50 {
                rt.progress().unwrap();
            }
            let desc = recv_one(&rt, 0, 512, 1);
            assert_eq!(desc.as_slice(), &vec![1u8; 300][..]);

            let comp = Comp::alloc_sync(1);
            let res = rt.post_recv(0, vec![0u8; 512], 2, comp.clone()).unwrap();
            assert!(res.is_posted(), "no send yet, must be posted");
            rt.oob_barrier();
            let sync = comp.as_sync().unwrap();
            while !sync.test() {
                rt.progress().unwrap();
            }
            let desc = sync.take().pop().unwrap();
            assert_eq!(desc.as_slice(), &vec![2u8; 300][..]);
        }
    });
}

#[test]
fn active_messages_eager_and_rendezvous() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        // Symmetric registration: every rank registers one CQ.
        let rcq = Comp::alloc_cq();
        let rcomp = rt.register_rcomp(rcq.clone());
        rt.oob_barrier();

        if rank == 0 {
            for size in [16usize, 2000, 50_000] {
                let scomp = Comp::alloc_sync(1);
                let mut pending = false;
                loop {
                    match rt.post_am(1, vec![0xAB; size], scomp.clone(), rcomp).unwrap() {
                        PostResult::Done(_) => break,
                        PostResult::Posted => {
                            pending = true;
                            break;
                        }
                        PostResult::Retry(_) => {
                            rt.progress().unwrap();
                        }
                    }
                }
                if pending {
                    scomp.as_sync().unwrap().wait_with(|| {
                        rt.progress().unwrap();
                    });
                }
            }
            rt.oob_barrier();
        } else {
            let mut got = Vec::new();
            while got.len() < 3 {
                rt.progress().unwrap();
                if let Some(desc) = rcq.pop() {
                    assert_eq!(desc.kind, CompKind::Am);
                    assert_eq!(desc.rank, 0);
                    assert!(desc.as_slice().iter().all(|&b| b == 0xAB));
                    got.push(desc.data.len());
                }
            }
            got.sort_unstable();
            assert_eq!(got, vec![16, 2000, 50_000]);
            rt.oob_barrier();
        }
    });
}

#[test]
fn rma_put_get_with_signals() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        // Rank 1 exposes a 4 KiB window; rkeys are exchanged via the
        // fabric's out-of-band allgather (PMI stand-in).
        let window = vec![0u8; 4096];
        let mr = rt.register_memory(&window).unwrap();
        let all = rt.fabric().oob_allgather(rank, mr.rkey.0.to_le_bytes().to_vec());
        let rkey1 = lci::Rkey(u32::from_le_bytes(all[1][..4].try_into().unwrap()));

        let sig_cq = Comp::alloc_cq();
        let sig_rcomp = rt.register_rcomp(sig_cq.clone());
        assert_eq!(sig_rcomp, 0, "first registration on each rank");
        rt.oob_barrier();

        if rank == 0 {
            // Put with signal into rank 1's window at offset 128.
            let comp = Comp::alloc_sync(1);
            let res = rt
                .post_put_x(1, vec![0x5A; 256], rkey1, 128, comp.clone())
                .remote_comp(sig_rcomp)
                .tag(9)
                .call()
                .unwrap();
            assert!(res.is_posted());
            comp.as_sync().unwrap().wait_with(|| {
                rt.progress().unwrap();
            });
            rt.oob_barrier(); // target observed the signal
                              // Get with signal from rank 1's window.
            let comp = Comp::alloc_sync(1);
            let res = rt
                .post_get_x(1, vec![0u8; 256], rkey1, 128, comp.clone())
                .remote_comp(sig_rcomp)
                .tag(11)
                .call()
                .unwrap();
            assert!(res.is_posted());
            let sync = comp.as_sync().unwrap();
            while !sync.test() {
                rt.progress().unwrap();
            }
            let desc = sync.take().pop().unwrap();
            assert_eq!(desc.kind, CompKind::Get);
            assert_eq!(desc.as_slice(), &vec![0x5A; 256][..]);
            rt.oob_barrier();
        } else {
            // Wait for the put signal.
            let desc = loop {
                rt.progress().unwrap();
                if let Some(d) = sig_cq.pop() {
                    break d;
                }
            };
            assert_eq!(desc.kind, CompKind::RemoteSignal);
            assert_eq!(desc.rank, 0);
            assert_eq!(desc.tag, 9);
            assert_eq!(&window[128..384], &vec![0x5A; 256][..]);
            rt.oob_barrier();
            // Wait for the get signal.
            let desc = loop {
                rt.progress().unwrap();
                if let Some(d) = sig_cq.pop() {
                    break d;
                }
            };
            assert_eq!(desc.kind, CompKind::RemoteSignal);
            assert_eq!(desc.tag, 11);
            rt.oob_barrier();
        }
        drop(window);
    });
}

#[test]
fn matching_policies_wildcards() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        if rank == 0 {
            // Sender must know the receiver matches with a wildcard
            // (restricted wildcard semantics, §3.3.2).
            let c = Comp::alloc_sync(1);
            let posted = loop {
                match rt
                    .post_send_x(1, vec![3u8; 200], 77, c.clone())
                    .matching_policy(MatchingPolicy::RankOnly)
                    .call()
                    .unwrap()
                {
                    PostResult::Done(_) => break false,
                    PostResult::Posted => break true,
                    PostResult::Retry(_) => {
                        rt.progress().unwrap();
                    }
                }
            };
            if posted {
                c.as_sync().unwrap().wait_with(|| {
                    rt.progress().unwrap();
                });
            }
            rt.oob_barrier();
        } else {
            // Tag is a wildcard: receive with a different tag value.
            let comp = Comp::alloc_sync(1);
            let res = rt
                .post_recv_x(0, vec![0u8; 512], 99999, comp.clone())
                .matching_policy(MatchingPolicy::RankOnly)
                .call()
                .unwrap();
            let desc = match res {
                PostResult::Done(d) => d,
                PostResult::Posted => {
                    let sync = comp.as_sync().unwrap();
                    while !sync.test() {
                        rt.progress().unwrap();
                    }
                    sync.take().pop().unwrap()
                }
                PostResult::Retry(_) => unreachable!(),
            };
            assert_eq!(desc.tag, 77, "delivered tag is the sender's");
            assert_eq!(desc.data.len(), 200);
            rt.oob_barrier();
        }
    });
}

#[test]
fn table1_invalid_combination_rejected() {
    let fabric = Fabric::new(1);
    let rt = Runtime::new(fabric, 0, RuntimeConfig::small()).unwrap();
    let err = rt
        .post_comm_x(Direction::In, 0)
        .recv_buf(vec![0u8; 8])
        .comp(Comp::alloc_sync(1))
        .remote_comp(3)
        .call()
        .unwrap_err();
    assert!(matches!(err, lci::FatalError::InvalidArg(_)));
}

#[test]
fn handler_completion_from_progress() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let handler = Comp::alloc_handler(move |desc| {
            assert_eq!(desc.kind, CompKind::Am);
            h.fetch_add(desc.data.len(), Ordering::SeqCst);
        });
        let rcomp = rt.register_rcomp(handler);
        rt.oob_barrier();
        if rank == 0 {
            let scomp = Comp::alloc_cq();
            for _ in 0..10 {
                while let PostResult::Retry(_) =
                    rt.post_am(1, vec![1u8; 100], scomp.clone(), rcomp).unwrap()
                {
                    rt.progress().unwrap();
                }
            }
            rt.oob_barrier();
            rt.oob_barrier();
        } else {
            rt.oob_barrier();
            while hits.load(Ordering::SeqCst) < 1000 {
                rt.progress().unwrap();
            }
            assert_eq!(hits.load(Ordering::SeqCst), 1000);
            rt.oob_barrier();
        }
    });
}

#[test]
fn multithreaded_shared_runtime() {
    // Two ranks; each runs 4 worker threads sharing the runtime (shared
    // resource mode): every worker ping-pongs with its peer worker by tag.
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        let nthreads = 4;
        let iters = 50;
        let workers: Vec<_> = (0..nthreads)
            .map(|t| {
                let rt = rt.clone();
                std::thread::spawn(move || {
                    let peer = 1 - rank;
                    for i in 0..iters {
                        let tag = (t * 1000 + i) as u32;
                        if rank == 0 {
                            let c = Comp::alloc_sync(1);
                            if send_until_accepted(&rt, peer, vec![t as u8; 128], tag, c.clone()) {
                                c.as_sync().unwrap().wait_with(|| {
                                    rt.progress().unwrap();
                                });
                            }
                            let desc = recv_one(&rt, peer, 256, tag);
                            assert_eq!(desc.as_slice(), &vec![t as u8; 128][..]);
                        } else {
                            let desc = recv_one(&rt, peer, 256, tag);
                            assert_eq!(desc.as_slice(), &vec![t as u8; 128][..]);
                            let c = Comp::alloc_sync(1);
                            if send_until_accepted(&rt, peer, vec![t as u8; 128], tag, c.clone()) {
                                c.as_sync().unwrap().wait_with(|| {
                                    rt.progress().unwrap();
                                });
                            }
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });
}

#[test]
fn multithreaded_dedicated_devices() {
    // Each worker thread gets its own device (dedicated resource mode);
    // devices are allocated on the main rank thread in deterministic
    // order so indices pair up across ranks.
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        let nthreads = 3;
        let devices: Vec<_> = (0..nthreads).map(|_| rt.alloc_device().unwrap()).collect();
        rt.oob_barrier(); // both ranks created all devices
        let workers: Vec<_> = devices
            .into_iter()
            .enumerate()
            .map(|(t, dev)| {
                let rt = rt.clone();
                std::thread::spawn(move || {
                    let peer = 1 - rank;
                    for i in 0..30u32 {
                        let tag = (t as u32) << 8 | i;
                        if rank == 0 {
                            let c = Comp::alloc_sync(1);
                            let posted = loop {
                                match rt
                                    .post_send_x(peer, vec![i as u8; 96], tag, c.clone())
                                    .device(&dev)
                                    .call()
                                    .unwrap()
                                {
                                    PostResult::Done(_) => break false,
                                    PostResult::Posted => break true,
                                    PostResult::Retry(_) => {
                                        dev.progress().unwrap();
                                    }
                                }
                            };
                            if posted {
                                c.as_sync().unwrap().wait_with(|| {
                                    dev.progress().unwrap();
                                });
                            }
                        } else {
                            let comp = Comp::alloc_sync(1);
                            let res = rt
                                .post_recv_x(peer, vec![0u8; 128], tag, comp.clone())
                                .device(&dev)
                                .call()
                                .unwrap();
                            let desc = match res {
                                PostResult::Done(d) => d,
                                PostResult::Posted => {
                                    let sync = comp.as_sync().unwrap();
                                    while !sync.test() {
                                        dev.progress().unwrap();
                                    }
                                    sync.take().pop().unwrap()
                                }
                                PostResult::Retry(_) => unreachable!(),
                            };
                            assert_eq!(desc.as_slice(), &vec![i as u8; 96][..]);
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });
}

#[test]
fn collectives_barrier_bcast_reduce() {
    with_ranks(4, RuntimeConfig::small(), |rank, rt| {
        // Barrier: no rank may pass until all arrive (checked via flag).
        collective::barrier(&rt).unwrap();

        // Broadcast from rank 2.
        let mut buf = if rank == 2 { b"payload!".to_vec() } else { vec![0u8; 8] };
        collective::broadcast(&rt, 2, &mut buf).unwrap();
        assert_eq!(&buf, b"payload!");

        // Reduce (sum) to rank 1.
        let contrib = vec![rank as u64 + 1, 10 * (rank as u64 + 1)];
        let res = collective::reduce_u64(&rt, 1, &contrib, |a, b| a + b).unwrap();
        if rank == 1 {
            assert_eq!(res.unwrap(), vec![1 + 2 + 3 + 4, 10 + 20 + 30 + 40]);
        } else {
            assert!(res.is_none());
        }

        // Allreduce (max).
        let r = collective::allreduce_u64(&rt, &[rank as u64], u64::max).unwrap();
        assert_eq!(r, vec![3]);
    });
}

#[test]
fn collectives_allgather_alltoall_ibarrier() {
    with_ranks(3, RuntimeConfig::small(), |rank, rt| {
        // Allgather of distinct-length-agnostic equal blocks.
        let mine = vec![rank as u8 + 1; 16];
        let all = collective::allgather(&rt, &mine).unwrap();
        for (r, blk) in all.iter().enumerate() {
            assert_eq!(blk, &vec![r as u8 + 1; 16], "rank {rank} slot {r}");
        }

        // All-to-all personalized blocks: to rank i send [me*10 + i; 8].
        let send: Vec<Vec<u8>> = (0..3).map(|i| vec![(rank * 10 + i) as u8; 8]).collect();
        let recvd = collective::alltoall(&rt, &send).unwrap();
        for (src, blk) in recvd.iter().enumerate() {
            assert_eq!(blk, &vec![(src * 10 + rank) as u8; 8], "from {src}");
        }

        // Non-blocking barrier as a completion graph.
        let g = collective::ibarrier(&rt).unwrap();
        while !g.test() {
            rt.progress().unwrap();
        }
    });
}

#[test]
fn device_attrs_and_stats() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        let attr = rt.device().attr();
        assert_eq!(attr.dev_id, 0);
        assert_eq!(attr.prepost_target, rt.config().prepost);

        let before = rt.device().stats();
        if rank == 0 {
            let c = Comp::alloc_sync(1);
            if send_until_accepted(&rt, 1, vec![1u8; 256], 70, c.clone()) {
                c.as_sync().unwrap().wait_with(|| {
                    rt.progress().unwrap();
                });
            }
        } else {
            let desc = recv_one(&rt, 0, 512, 70);
            assert_eq!(desc.data.len(), 256);
        }
        let after = rt.device().stats();
        let delta = after.since(&before);
        assert!(delta.posts >= 1, "at least one post counted");
        assert!(delta.progress_calls >= 1, "progress counted");
        rt.oob_barrier();
    });
}

#[test]
fn iovec_send() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        if rank == 0 {
            let segs: Vec<Box<[u8]>> =
                vec![vec![1u8; 100].into(), vec![2u8; 50].into(), vec![3u8; 25].into()];
            let c = Comp::alloc_sync(1);
            let posted = loop {
                match rt.post_send(1, segs.clone(), 5, c.clone()).unwrap() {
                    PostResult::Done(_) => break false,
                    PostResult::Posted => break true,
                    PostResult::Retry(_) => {
                        rt.progress().unwrap();
                    }
                }
            };
            if posted {
                c.as_sync().unwrap().wait_with(|| {
                    rt.progress().unwrap();
                });
            }
        } else {
            let desc = recv_one(&rt, 0, 512, 5);
            let d = desc.as_slice();
            assert_eq!(d.len(), 175);
            assert!(d[..100].iter().all(|&b| b == 1));
            assert!(d[100..150].iter().all(|&b| b == 2));
            assert!(d[150..].iter().all(|&b| b == 3));
        }
        rt.oob_barrier();
    });
}

#[test]
fn user_ctx_roundtrip() {
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        if rank == 0 {
            let c = Comp::alloc_sync(1);
            let res =
                rt.post_send_x(1, vec![9u8; 500], 3, c.clone()).user_ctx(0xCAFE).call().unwrap();
            if res.is_posted() {
                let sync = c.as_sync().unwrap();
                while !sync.test() {
                    rt.progress().unwrap();
                }
                let desc = sync.take().pop().unwrap();
                assert_eq!(desc.user_ctx, 0xCAFE);
            }
        } else {
            let comp = Comp::alloc_sync(1);
            let res =
                rt.post_recv_x(0, vec![0u8; 512], 3, comp.clone()).user_ctx(0xBEEF).call().unwrap();
            let desc = match res {
                PostResult::Done(d) => d,
                PostResult::Posted => {
                    let sync = comp.as_sync().unwrap();
                    while !sync.test() {
                        rt.progress().unwrap();
                    }
                    sync.take().pop().unwrap()
                }
                PostResult::Retry(_) => unreachable!(),
            };
            assert_eq!(desc.user_ctx, 0xBEEF);
        }
        rt.oob_barrier();
    });
}

#[test]
fn completion_graph_drives_communication() {
    // A two-node graph on rank 0: send A, then (after A completes) send
    // B; rank 1 receives both and checks it saw A's payload before B's.
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        if rank == 0 {
            let mut gb = lci::GraphBuilder::new();
            let rt_a = rt.clone();
            let a = gb.add_comm(move |comp| loop {
                match rt_a.post_send(1, vec![0xA1; 700], 21, comp.clone()).unwrap() {
                    PostResult::Done(d) => {
                        comp.signal(d);
                        break;
                    }
                    PostResult::Posted => break,
                    PostResult::Retry(_) => {
                        rt_a.progress().unwrap();
                    }
                }
            });
            let rt_b = rt.clone();
            let b = gb.add_comm(move |comp| loop {
                match rt_b.post_send(1, vec![0xB2; 700], 22, comp.clone()).unwrap() {
                    PostResult::Done(d) => {
                        comp.signal(d);
                        break;
                    }
                    PostResult::Posted => break,
                    PostResult::Retry(_) => {
                        rt_b.progress().unwrap();
                    }
                }
            });
            gb.add_edge(a, b);
            let g = gb.build();
            g.start();
            g.wait_with(|| {
                rt.progress().unwrap();
            });
        } else {
            let d1 = recv_one(&rt, 0, 1024, 21);
            assert!(d1.as_slice().iter().all(|&x| x == 0xA1));
            let d2 = recv_one(&rt, 0, 1024, 22);
            assert!(d2.as_slice().iter().all(|&x| x == 0xB2));
        }
        rt.oob_barrier();
    });
}

#[test]
fn explicit_packet_send() {
    // §3.3.1: assemble the message directly in a packet to skip the
    // staging copy.
    with_ranks(2, RuntimeConfig::small(), |rank, rt| {
        if rank == 0 {
            let mut pkt = rt.packet_pool().get().unwrap();
            pkt.fill(b"packet-assembled payload");
            let c = Comp::alloc_sync(1);
            let posted = loop {
                match rt.post_send(1, pkt, 8, c.clone()) {
                    Ok(PostResult::Done(_)) => break false,
                    Ok(PostResult::Posted) => break true,
                    Ok(PostResult::Retry(_)) => {
                        rt.progress().unwrap();
                        // Retried consumed packet: refill a new one.
                        let mut p2 = rt.packet_pool().get().unwrap();
                        p2.fill(b"packet-assembled payload");
                        pkt = p2;
                    }
                    Err(e) => panic!("{e}"),
                }
            };
            if posted {
                c.as_sync().unwrap().wait_with(|| {
                    rt.progress().unwrap();
                });
            }
        } else {
            let desc = recv_one(&rt, 0, 64, 8);
            assert_eq!(desc.as_slice(), b"packet-assembled payload");
        }
        rt.oob_barrier();
    });
}
