//! Zero-copy receive-path correctness: the view-based coalesced demux
//! must be byte-identical to the copying path (property-tested at the
//! frame level and end-to-end through the runtime), and refcounted
//! packet views must return their slot to the pool exactly once, even
//! when views are cloned and dropped across threads.

use lci::proto::{coalesce_pack, coalesce_unpack, coalesce_unpack_ranges};
use lci::{
    CoalesceConfig, Comp, PacketPool, PacketPoolConfig, PostResult, Runtime, RuntimeConfig,
    StatsSnapshot,
};
use lci_fabric::Fabric;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const THREADS: usize = 4;
const MSGS: usize = 200;

proptest! {
    /// Demuxing a packed frame through refcounted views yields exactly
    /// the bytes the copying unpack produces, for any record sequence —
    /// and dropping the last view returns the packet slot.
    #[test]
    fn view_demux_byte_identical_to_copying(
        subs in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)),
            1..12,
        ),
    ) {
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 4096, count: 4 }).unwrap();
        let mut frame = Vec::new();
        for (imm, payload) in &subs {
            coalesce_pack(&mut frame, *imm, payload);
        }
        let mut packet = pool.get().unwrap();
        packet.fill(&frame);

        let wire = &packet.as_slice()[..packet.len()];
        let copied: Vec<(u64, Vec<u8>)> =
            coalesce_unpack(wire).unwrap().into_iter().map(|(imm, s)| (imm, s.to_vec())).collect();
        let ranges = coalesce_unpack_ranges(wire).unwrap();
        let shared = packet.into_shared();

        prop_assert_eq!(ranges.len(), copied.len());
        let views: Vec<_> = ranges
            .into_iter()
            .map(|(imm, r)| (imm, shared.view(r.start, r.end - r.start)))
            .collect();
        drop(shared);
        prop_assert_eq!(pool.outstanding(), 1, "views must keep the slot alive");
        for ((imm_v, view), (imm_c, bytes)) in views.iter().zip(&copied) {
            prop_assert_eq!(imm_v, imm_c);
            prop_assert_eq!(view.as_slice(), &bytes[..]);
        }
        drop(views);
        prop_assert_eq!(pool.outstanding(), 0, "last view must release the slot");
    }
}

/// Views cloned and dropped concurrently across threads never corrupt
/// the payload and release the slot exactly once: after every round the
/// pool reports zero outstanding packets.
#[test]
fn shared_views_refcount_stress() {
    let pool = PacketPool::new(PacketPoolConfig { payload_size: 4096, count: 8 }).unwrap();
    for round in 0..50usize {
        let mut packet = pool.get().unwrap();
        let data: Vec<u8> = (0..1024).map(|i| (i + round) as u8).collect();
        packet.fill(&data);
        let shared = packet.into_shared();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let view = shared.view(t * 256, 256);
                let expect: Vec<u8> = data[t * 256..(t + 1) * 256].to_vec();
                std::thread::spawn(move || {
                    let mut clones = Vec::new();
                    for _ in 0..100 {
                        clones.push(view.clone());
                    }
                    for c in &clones {
                        assert_eq!(c.as_slice(), &expect[..]);
                    }
                })
            })
            .collect();
        drop(shared);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.outstanding(), 0, "round {round}: slot leaked or double-freed");
    }
}

/// The payload each sender thread streams: tagged with the thread id and
/// sequence number so reordering or corruption is visible.
fn payload(t: usize, seq: u64) -> Vec<u8> {
    let mut p = seq.to_le_bytes().to_vec();
    p.extend(std::iter::repeat_n(t as u8 ^ 0x5a, 24));
    p
}

/// Streams `MSGS` active messages per thread (rcomp = thread id) from
/// rank 0 to rank 1 with coalescing on, returning the payload sequences
/// each receiver CQ observed and the receiver device's stats.
fn run_am(zero_copy: bool) -> (Vec<Vec<Vec<u8>>>, StatsSnapshot) {
    run_am_on(lci_fabric::DeviceConfig::ibv(), zero_copy)
}

/// Same workload on an arbitrary transport.
fn run_am_on(
    device: lci_fabric::DeviceConfig,
    zero_copy: bool,
) -> (Vec<Vec<Vec<u8>>>, StatsSnapshot) {
    let mut cfg = RuntimeConfig::small().with_device(device);
    cfg.coalesce = CoalesceConfig::enabled_with_bytes(2048);
    cfg.zero_copy_recv = zero_copy;
    let fabric = Fabric::new(2);
    let receiver_done = Arc::new(AtomicBool::new(false));

    let f2 = fabric.clone();
    let cfg2 = cfg.clone();
    let done2 = receiver_done.clone();
    let receiver = std::thread::spawn(move || {
        let rt = Runtime::new(f2, 1, cfg2).unwrap();
        let cqs: Vec<Comp> = (0..THREADS).map(|_| Comp::alloc_cq()).collect();
        for cq in &cqs {
            rt.register_rcomp(cq.clone());
        }
        rt.oob_barrier();
        let mut out = vec![Vec::new(); THREADS];
        let mut got = 0;
        while got < THREADS * MSGS {
            rt.progress().unwrap();
            for (t, cq) in cqs.iter().enumerate() {
                while let Some(desc) = cq.pop() {
                    assert_eq!(desc.rank, 0);
                    out[t].push(desc.as_slice().to_vec());
                    got += 1;
                }
            }
        }
        let stats = rt.device().stats();
        done2.store(true, Ordering::Release);
        (out, stats)
    });

    let rt = Runtime::new(fabric, 0, cfg).unwrap();
    rt.oob_barrier();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let rt = rt.clone();
            std::thread::spawn(move || {
                for seq in 0..MSGS as u64 {
                    let comp = Comp::alloc_sync(1);
                    loop {
                        match rt.post_am(1, payload(t, seq), comp.clone(), t as u32).unwrap() {
                            PostResult::Done(_) => break,
                            PostResult::Posted => {
                                comp.as_sync().unwrap().wait_with(|| {
                                    rt.progress().unwrap();
                                });
                                break;
                            }
                            PostResult::Retry(_) => {
                                rt.progress().unwrap();
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Keep the progress engine turning so the idle auto-flush drains any
    // sub-messages still buffered when the sender threads finished.
    while !receiver_done.load(Ordering::Acquire) {
        rt.progress().unwrap();
    }
    let (out, stats) = receiver.join().unwrap();
    (out, stats)
}

/// End-to-end: zero-copy demux delivers byte-identical payloads to the
/// copying ablation path, and the receiver's stats prove which path ran
/// (and that receives were restocked in batches).
#[test]
fn am_payloads_identical_zero_copy_on_vs_off() {
    let (on_out, on_stats) = run_am(true);
    let (off_out, off_stats) = run_am(false);

    for t in 0..THREADS {
        let expect: Vec<Vec<u8>> = (0..MSGS as u64).map(|seq| payload(t, seq)).collect();
        assert_eq!(on_out[t], expect, "zero-copy: rcomp {t} corrupted or reordered");
        assert_eq!(off_out[t], expect, "copying: rcomp {t} corrupted or reordered");
    }

    let total = (THREADS * MSGS) as u64;
    assert_eq!(on_stats.zero_copy_deliveries, total, "every AM should deliver zero-copy");
    assert_eq!(on_stats.copied_deliveries, 0);
    assert!(off_stats.copied_deliveries > 0, "ablation path should copy coalesced subs");
    assert!(
        off_stats.zero_copy_deliveries < total,
        "copying run must not deliver everything zero-copy"
    );
    for (name, stats) in [("on", &on_stats), ("off", &off_stats)] {
        assert!(stats.replenish_batches > 0, "{name}: receives never restocked in batch");
        assert!(
            stats.replenish_posted >= stats.replenish_batches,
            "{name}: batches must post at least one receive each"
        );
    }
}

/// The zero-copy delivery path over the shared-memory transport: frames
/// crossing the ring still demux into refcounted views without copies,
/// byte-identical to the simulated wire.
#[test]
fn am_payloads_zero_copy_over_shm() {
    let (out, stats) = run_am_on(lci_fabric::DeviceConfig::shm(), true);
    for (t, got) in out.iter().enumerate().take(THREADS) {
        let expect: Vec<Vec<u8>> = (0..MSGS as u64).map(|seq| payload(t, seq)).collect();
        assert_eq!(*got, expect, "shm zero-copy: rcomp {t} corrupted or reordered");
    }
    let total = (THREADS * MSGS) as u64;
    assert_eq!(stats.zero_copy_deliveries, total, "every AM should deliver zero-copy");
    assert_eq!(stats.copied_deliveries, 0);
    assert!(stats.shm_ring_hwm > 0, "shm transport unused by the workload");
}
