//! Steady-state allocation audit (DESIGN.md §4.7): a counting global
//! allocator wraps `System` and the tests assert that the data path
//! performs **zero** heap allocations per operation once warmed up —
//! pooled op contexts, recycled staging buffers, persistent progress
//! scratch, reusable rendezvous transfer shells, and the packet pool
//! together mean the steady state never touches malloc (the paper's
//! §4.1.2 design goal, extended from packets to the whole path).
//!
//! The harness drives both ranks of a 2-rank fabric from one thread, so
//! the global counter observes exactly the operations under test. User
//! buffers are recovered from completion descriptors and reposted, as a
//! steady-state application would.

use crossbeam::queue::ArrayQueue;
use lci::{Comp, CompDesc, DataBuf, Fabric, PostResult, Runtime, RuntimeConfig, SendBuf};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counts every allocation call (alloc, alloc_zeroed, realloc) passing
/// through the global allocator. Frees are not counted: the audit is
/// about acquiring memory on the critical path.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// The counter is process-global, so tests must not overlap; the test
/// runner uses one thread per test by default. Locking never allocates.
static SERIAL: Mutex<()> = Mutex::new(());

/// Two single-threaded ranks over one fabric plus fixed-capacity
/// completion collectors (handler comps push into bounded queues —
/// no allocation on the completion path).
struct Pair {
    rt0: Runtime,
    rt1: Runtime,
    send_done: Arc<ArrayQueue<CompDesc>>,
    recv_done: Arc<ArrayQueue<CompDesc>>,
    send_comp: Comp,
    recv_comp: Comp,
}

impl Pair {
    fn new_cfg(cfg: RuntimeConfig) -> Pair {
        let fabric = Fabric::new(2);
        let rt0 = Runtime::new(fabric.clone(), 0, cfg.clone()).unwrap();
        let rt1 = Runtime::new(fabric, 1, cfg).unwrap();
        let send_done: Arc<ArrayQueue<CompDesc>> = Arc::new(ArrayQueue::new(4));
        let recv_done: Arc<ArrayQueue<CompDesc>> = Arc::new(ArrayQueue::new(4));
        let send_comp = {
            let q = send_done.clone();
            Comp::alloc_handler(move |d| {
                let _ = q.push(d);
            })
        };
        let recv_comp = {
            let q = recv_done.clone();
            Comp::alloc_handler(move |d| {
                let _ = q.push(d);
            })
        };
        Pair { rt0, rt1, send_done, recv_done, send_comp, recv_comp }
    }

    /// One transfer: rank 1 posts the receive, rank 0 sends, both ranks
    /// progress until both sides complete. Returns (send, recv)
    /// descriptors so the caller can recover and repost the buffers.
    fn xfer(&self, payload: SendBuf, landing: Box<[u8]>, tag: u32) -> (CompDesc, CompDesc) {
        match self.rt1.post_recv(0, landing, tag, self.recv_comp.clone()).unwrap() {
            PostResult::Posted => {}
            other => panic!("recv did not post: {other:?}"),
        }
        let mut sent = match self.rt0.post_send(1, payload, tag, self.send_comp.clone()).unwrap() {
            PostResult::Done(d) => Some(d),
            PostResult::Posted => None,
            PostResult::Retry(r) => panic!("send retried under a quiet harness: {r:?}"),
        };
        let mut received: Option<CompDesc> = None;
        while sent.is_none() || received.is_none() {
            self.rt0.progress().unwrap();
            self.rt1.progress().unwrap();
            if sent.is_none() {
                sent = self.send_done.pop();
            }
            if received.is_none() {
                received = self.recv_done.pop();
            }
        }
        (sent.unwrap(), received.unwrap())
    }
}

/// Recovers the send buffer handed back by a send completion.
fn recover_send(d: CompDesc) -> SendBuf {
    match d.data {
        DataBuf::SendBuf(s) => s,
        other => panic!("send completion did not return the buffer: {other:?}"),
    }
}

/// Recovers the posted landing buffer from a receive completion.
fn recover_recv(d: CompDesc) -> Box<[u8]> {
    match d.data {
        DataBuf::Partial(b, _) => b,
        DataBuf::Owned(b) => b,
        other => panic!("recv completion did not return the landing buffer: {other:?}"),
    }
}

/// Runs `warmup + iters` ping transfers of `size` bytes, recycling the
/// user buffers across iterations, and returns the number of allocator
/// calls made during the measured `iters`.
fn steady_state_allocs(recycling: bool, size: usize, warmup: usize, iters: usize) -> u64 {
    steady_state_allocs_on(lci_fabric::DeviceConfig::ibv(), recycling, size, warmup, iters)
}

fn steady_state_allocs_on(
    device: lci_fabric::DeviceConfig,
    recycling: bool,
    size: usize,
    warmup: usize,
    iters: usize,
) -> u64 {
    steady_state_allocs_cfg(
        RuntimeConfig::small().with_device(device).with_alloc_recycling(recycling),
        size,
        warmup,
        iters,
    )
}

fn steady_state_allocs_cfg(cfg: RuntimeConfig, size: usize, warmup: usize, iters: usize) -> u64 {
    let pair = Pair::new_cfg(cfg);
    let mut payload: SendBuf = vec![0xA5u8; size].into();
    let mut landing: Box<[u8]> = vec![0u8; size].into();
    for _ in 0..warmup {
        let (s, r) = pair.xfer(payload, landing, 5);
        payload = recover_send(s);
        landing = recover_recv(r);
    }
    let before = alloc_calls();
    for _ in 0..iters {
        let (s, r) = pair.xfer(payload, landing, 5);
        payload = recover_send(s);
        landing = recover_recv(r);
    }
    alloc_calls() - before
}

/// Inject-size messages (≤ `inject_size`): the whole path — inline
/// send buffer, packet-pool delivery, handler completion — is
/// allocation-free at steady state.
#[test]
fn inject_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    let allocs = steady_state_allocs(true, 8, 64, 256);
    assert_eq!(allocs, 0, "8-byte inject loop made {allocs} allocator calls after warmup");
}

/// Buffer-copy eager messages: staging comes from the recycled buffer
/// pool, op contexts from the slab pool — zero allocator calls per
/// operation once shelves are warm.
#[test]
fn eager_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    let allocs = steady_state_allocs(true, 512, 64, 256);
    assert_eq!(allocs, 0, "512-byte eager loop made {allocs} allocator calls after warmup");
}

/// Repeated same-size rendezvous transfers: registration-cache hits,
/// recycled transfer shells, and the persistent chunk scratch ring make
/// the large-message pipeline allocation-free at steady state.
#[test]
fn rendezvous_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    let allocs = steady_state_allocs(true, 256 << 10, 16, 32);
    assert_eq!(allocs, 0, "256 KiB rendezvous loop made {allocs} allocator calls after warmup");
}

/// The shared-memory transport keeps the same guarantee: ring frames
/// are encoded in place, inbound payloads stage through the recycled
/// buffer pool, and spill space comes from the segment — the eager loop
/// never calls the allocator once warm.
#[test]
fn shm_eager_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    let allocs = steady_state_allocs_on(lci_fabric::DeviceConfig::shm(), true, 512, 64, 256);
    assert_eq!(allocs, 0, "shm 512-byte eager loop made {allocs} allocator calls after warmup");
}

/// Rendezvous over shm: every 64 KiB chunk crosses the ring as a
/// spilled frame, and spill reclamation is pointer arithmetic on the
/// shared segment — still zero allocator calls per transfer.
#[test]
fn shm_rendezvous_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    let allocs = steady_state_allocs_on(lci_fabric::DeviceConfig::shm(), true, 256 << 10, 16, 32);
    assert_eq!(allocs, 0, "shm 256 KiB rendezvous loop made {allocs} allocator calls after warmup");
}

/// Builds the config the thread-per-core matrix runs under: placement
/// enabled with 4 logical cores, so the buffer pool, packet pool, and
/// stats all carry 4 stripes.
fn placed_cfg(size_hint: lci_fabric::DeviceConfig) -> RuntimeConfig {
    RuntimeConfig::small()
        .with_device(size_hint)
        .with_alloc_recycling(true)
        .with_placement(lci::Placement::default().with_cores(4))
}

/// Per-core striping must not reintroduce allocation: with placement
/// enabled (4 stripes), the single-threaded harness stays owner-local
/// on its home stripe and the inject loop still makes zero allocator
/// calls once warm.
#[test]
fn placed_inject_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    let allocs = steady_state_allocs_cfg(placed_cfg(lci_fabric::DeviceConfig::ibv()), 8, 64, 256);
    assert_eq!(allocs, 0, "placed 8-byte inject loop made {allocs} allocator calls after warmup");
}

/// Eager staging under placement: takes come from the home shelf and
/// frees return to their origin stripe — the striped fast path is as
/// allocation-free as the single-shelf one.
#[test]
fn placed_eager_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    let allocs = steady_state_allocs_cfg(placed_cfg(lci_fabric::DeviceConfig::ibv()), 512, 64, 256);
    assert_eq!(allocs, 0, "placed 512-byte eager loop made {allocs} allocator calls after warmup");
}

/// Rendezvous under placement: striped op-context and packet pools plus
/// the registration cache keep the large-message pipeline at zero
/// allocator calls per transfer.
#[test]
fn placed_rendezvous_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    let allocs =
        steady_state_allocs_cfg(placed_cfg(lci_fabric::DeviceConfig::ibv()), 256 << 10, 16, 32);
    assert_eq!(
        allocs, 0,
        "placed 256 KiB rendezvous loop made {allocs} allocator calls after warmup"
    );
}

/// Warm chunk-pipelined ring allreduce: once the collective engine's
/// landing-buffer shelf, staging pool, op-context slabs, and round
/// bookkeeping are warm, a full allreduce — 2(n−1) rounds of windowed
/// sends, pre-posted recvs, and in-place folds, 8 chunks per block —
/// makes zero allocator calls on either rank. Blocking collectives
/// need both ranks live simultaneously, so this audit runs one thread
/// per rank and the global counter covers both sides of the exchange.
#[test]
fn collective_allreduce_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    const WARMUP: usize = 8;
    const ITERS: usize = 32;
    // 64 KiB payload -> 32 KiB ring blocks -> eight 4 KiB chunks per
    // round, so the bounded-inflight window actually pipelines.
    const ELEMS: usize = 8 << 10;
    let fabric = Fabric::new(2);
    // Rank threads rendezvous with the measuring main thread here;
    // `Barrier::wait` is futex-based and allocation-free once the
    // warmup crossing has happened.
    let gate = Arc::new(std::sync::Barrier::new(3));
    let mut threads = Vec::new();
    for rank in 0..2 {
        let fabric = fabric.clone();
        let gate = gate.clone();
        threads.push(std::thread::spawn(move || {
            let cfg = RuntimeConfig { coll_chunk_size: 4096, ..RuntimeConfig::small() };
            let rt = Runtime::new(fabric, rank, cfg).unwrap();
            let mut buf = vec![1u8; ELEMS * 8];
            for _ in 0..WARMUP {
                lci::coll::allreduce(&rt, &mut buf, &lci::SumU64).unwrap();
            }
            gate.wait(); // measurement window opens
            for _ in 0..ITERS {
                lci::coll::allreduce(&rt, &mut buf, &lci::SumU64).unwrap();
            }
            gate.wait(); // window closes
            gate.wait(); // counter read; teardown may allocate freely now
        }));
    }
    gate.wait();
    let before = alloc_calls();
    gate.wait();
    let allocs = alloc_calls() - before;
    gate.wait();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        allocs, 0,
        "warm ring-allreduce loop made {allocs} allocator calls across both ranks over {ITERS} iterations"
    );
}

/// Warm sparse alltoallv — the MoE dispatch/combine inner loop: a count
/// exchange (recv side unknown) followed by the skew-scheduled vector
/// exchange with a zero pair, inline-sized blocks, an eager block, and
/// a multi-chunk block. Once the landing shelf, count-staging scratch,
/// offset/order scratch, and staging pool are warm, the whole
/// counts+data iteration makes zero allocator calls on any rank. Three
/// ranks so the sparse skip path (zero-byte pair) really runs.
#[test]
fn collective_alltoallv_steady_state_is_allocation_free() {
    let _g = SERIAL.lock().unwrap();
    const WARMUP: usize = 8;
    const ITERS: usize = 32;
    // counts[src][dst]: a skewed sparse matrix exercising every block
    // protocol (inline 16/24/8, eager 3000, chunked 5000 at 4 KiB
    // chunks) plus two zero pairs.
    const COUNTS: [[usize; 3]; 3] = [[16, 0, 5000], [24, 8, 0], [0, 3000, 64]];
    let fabric = Fabric::new(3);
    let gate = Arc::new(std::sync::Barrier::new(4));
    let mut threads = Vec::new();
    for (rank, row) in COUNTS.iter().enumerate() {
        let fabric = fabric.clone();
        let gate = gate.clone();
        threads.push(std::thread::spawn(move || {
            let cfg = RuntimeConfig { coll_chunk_size: 4096, ..RuntimeConfig::small() };
            let rt = Runtime::new(fabric, rank, cfg).unwrap();
            let send_counts = row.to_vec();
            let send = vec![0x5Au8; send_counts.iter().sum()];
            let mut recv_counts = vec![0usize; 3];
            let mut recv = vec![0u8; (0..3).map(|src| COUNTS[src][rank]).sum()];
            let mut iter = |rt: &Runtime| {
                lci::coll::exchange_counts(rt, &send_counts, &mut recv_counts).unwrap();
                lci::coll::alltoallv(rt, &send, &send_counts, &mut recv, &recv_counts).unwrap();
            };
            for _ in 0..WARMUP {
                iter(&rt);
            }
            gate.wait(); // measurement window opens
            for _ in 0..ITERS {
                iter(&rt);
            }
            gate.wait(); // window closes
            gate.wait(); // counter read; teardown may allocate freely now
        }));
    }
    gate.wait();
    let before = alloc_calls();
    gate.wait();
    let allocs = alloc_calls() - before;
    gate.wait();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        allocs, 0,
        "warm alltoallv counts+data loop made {allocs} allocator calls across three ranks over {ITERS} iterations"
    );
}

/// The ablation baseline really does allocate: with recycling off the
/// same eager loop hits the allocator every iteration, which also
/// proves the harness counts what it claims to count.
#[test]
fn recycling_off_allocates_per_operation() {
    let _g = SERIAL.lock().unwrap();
    let iters = 256;
    let allocs = steady_state_allocs(false, 512, 64, iters);
    assert!(
        allocs >= iters as u64,
        "expected at least one allocator call per op with recycling off, got {allocs}"
    );
}
