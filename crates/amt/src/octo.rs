//! octo-mini: a rotating-star Barnes-Hut simulation (the Octo-Tiger
//! stand-in of paper §5.4 / Fig. 7).
//!
//! Octo-Tiger simulates stellar systems with adaptive octrees and fast
//! multipole methods on HPX. octo-mini keeps the communication-relevant
//! skeleton: a star of particles (dense rotating sphere) is partitioned
//! across ranks; every step each rank
//!
//! 1. builds a local octree and reduces it to a *multipole summary*
//!    (coarse pseudo-particles),
//! 2. exchanges summaries with every other rank via parcels,
//! 3. fans the force computation out as scheduler tasks (local tree via
//!    Barnes-Hut traversal + remote summaries as point masses),
//! 4. integrates (leapfrog) and migrates particles that crossed slab
//!    boundaries to their new owner via parcels.
//!
//! Communication is therefore fine-grained, asynchronous, issued from
//! many worker threads, and progressed by idle workers — the pattern the
//! paper's Fig. 7 stresses. The reported metric is time per step.

// 3-vector math indexes several arrays per `d in 0..3` loop; iterator
// rewrites obscure the component-wise structure.
#![allow(clippy::needless_range_loop)]

use crate::parcel::Parcelport;
use crate::sched::Pool;
use lci_fabric::Fabric;
use lcw::{World, WorldConfig};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One particle.
#[derive(Clone, Copy, Debug, Default)]
pub struct Particle {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct OctoConfig {
    /// Global particle count (split across ranks).
    pub n_particles: usize,
    /// Steps to run.
    pub steps: usize,
    /// Barnes-Hut opening angle.
    pub theta: f64,
    /// Time step.
    pub dt: f64,
    /// Worker threads per rank.
    pub nthreads: usize,
    /// Particles per force task.
    pub chunk: usize,
    /// Communication backend.
    pub world: WorldConfig,
    /// RNG seed.
    pub seed: u64,
    /// Gravitational softening.
    pub eps: f64,
}

impl Default for OctoConfig {
    fn default() -> Self {
        Self {
            n_particles: 2_000,
            steps: 3,
            theta: 0.5,
            dt: 1e-3,
            nthreads: 2,
            chunk: 128,
            world: WorldConfig::new(
                lcw::BackendKind::Lci,
                lcw::Platform::Expanse,
                lcw::ResourceMode::Dedicated(2),
            ),
            seed: 1,
            eps: 1e-2,
        }
    }
}

/// Per-run statistics.
#[derive(Clone, Debug)]
pub struct StepStats {
    /// Wall time of each step.
    pub step_times: Vec<Duration>,
    /// Parcels sent by this rank.
    pub parcels_sent: u64,
    /// Local particle count at the end (migration moves them around).
    pub final_local_particles: usize,
    /// Sum of |v| over local particles (sanity/verification).
    pub momentum_proxy: f64,
}

/// Star radius; ranks own x-slabs of [-R, R].
const R: f64 = 1.0;

/// Initializes the rotating star: uniform dense sphere with solid-body
/// rotation around z. Deterministic: every rank generates the full set
/// and keeps its slab.
fn init_particles(cfg: &OctoConfig, rank: usize, nranks: usize) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let omega = 0.5; // angular velocity
    let mut mine = Vec::new();
    for _ in 0..cfg.n_particles {
        // Rejection-sample the unit sphere.
        let p = loop {
            let x = rng.gen_range(-1.0..1.0);
            let y = rng.gen_range(-1.0..1.0);
            let z = rng.gen_range(-1.0..1.0);
            if x * x + y * y + z * z <= 1.0 {
                break [x * R, y * R, z * R];
            }
        };
        let vel = [-omega * p[1], omega * p[0], 0.0];
        if owner_of(p[0], nranks) == rank {
            mine.push(Particle { pos: p, vel, mass: 1.0 / cfg.n_particles as f64 });
        }
    }
    mine
}

/// Slab owner of coordinate `x`.
fn owner_of(x: f64, nranks: usize) -> usize {
    let t = ((x + R) / (2.0 * R)).clamp(0.0, 0.999_999);
    (t * nranks as f64) as usize
}

// ---------------------------------------------------------------------
// Octree
// ---------------------------------------------------------------------

/// Octree node (array-based).
struct Node {
    center: [f64; 3],
    half: f64,
    com: [f64; 3],
    mass: f64,
    /// Index of the first child; -1 for leaves.
    child: i32,
    /// Particle indices (leaves only).
    bucket: Vec<u32>,
}

/// A Barnes-Hut octree over a particle snapshot.
pub struct Octree {
    nodes: Vec<Node>,
}

const BUCKET: usize = 16;

impl Octree {
    /// Builds a tree over `parts`.
    pub fn build(parts: &[Particle]) -> Octree {
        let mut tree = Octree {
            nodes: vec![Node {
                center: [0.0; 3],
                half: R * 1.5,
                com: [0.0; 3],
                mass: 0.0,
                child: -1,
                bucket: Vec::new(),
            }],
        };
        for i in 0..parts.len() {
            tree.insert(0, i as u32, parts);
        }
        tree.summarize(0, parts);
        tree
    }

    fn insert(&mut self, node: usize, pi: u32, parts: &[Particle]) {
        if self.nodes[node].child < 0 {
            self.nodes[node].bucket.push(pi);
            if self.nodes[node].bucket.len() > BUCKET {
                self.split(node, parts);
            }
            return;
        }
        let c = self.child_of(node, parts[pi as usize].pos);
        self.insert(c, pi, parts);
    }

    fn child_of(&self, node: usize, pos: [f64; 3]) -> usize {
        let n = &self.nodes[node];
        let mut idx = 0usize;
        for d in 0..3 {
            if pos[d] >= n.center[d] {
                idx |= 1 << d;
            }
        }
        n.child as usize + idx
    }

    fn split(&mut self, node: usize, parts: &[Particle]) {
        let first = self.nodes.len() as i32;
        let (center, half) = (self.nodes[node].center, self.nodes[node].half);
        for i in 0..8 {
            let mut c = center;
            for d in 0..3 {
                c[d] += if i & (1 << d) != 0 { half / 2.0 } else { -half / 2.0 };
            }
            self.nodes.push(Node {
                center: c,
                half: half / 2.0,
                com: [0.0; 3],
                mass: 0.0,
                child: -1,
                bucket: Vec::new(),
            });
        }
        self.nodes[node].child = first;
        let bucket = std::mem::take(&mut self.nodes[node].bucket);
        for pi in bucket {
            let c = self.child_of(node, parts[pi as usize].pos);
            self.insert(c, pi, parts);
        }
    }

    fn summarize(&mut self, node: usize, parts: &[Particle]) -> (f64, [f64; 3]) {
        let child = self.nodes[node].child;
        let mut mass = 0.0;
        let mut com = [0.0; 3];
        if child < 0 {
            for &pi in &self.nodes[node].bucket {
                let p = &parts[pi as usize];
                mass += p.mass;
                for d in 0..3 {
                    com[d] += p.mass * p.pos[d];
                }
            }
        } else {
            for i in 0..8 {
                let (m, c) = self.summarize(child as usize + i, parts);
                mass += m;
                for d in 0..3 {
                    com[d] += m * c[d];
                }
            }
        }
        if mass > 0.0 {
            for d in com.iter_mut() {
                *d /= mass;
            }
        }
        self.nodes[node].mass = mass;
        self.nodes[node].com = com;
        (mass, com)
    }

    /// Gravitational acceleration at `pos` via Barnes-Hut traversal.
    pub fn accel(&self, pos: [f64; 3], theta: f64, eps: f64, parts: &[Particle]) -> [f64; 3] {
        let mut acc = [0.0; 3];
        let mut stack = vec![0usize];
        while let Some(ni) = stack.pop() {
            let n = &self.nodes[ni];
            if n.mass == 0.0 {
                continue;
            }
            let dx = [n.com[0] - pos[0], n.com[1] - pos[1], n.com[2] - pos[2]];
            let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
            let d = d2.sqrt();
            if n.child < 0 || (2.0 * n.half) / (d + 1e-12) < theta {
                if n.child < 0 {
                    // Direct sum over the leaf bucket (excludes self by
                    // the softening; exact self-force is zero distance).
                    for &pi in &n.bucket {
                        let p = &parts[pi as usize];
                        let dx = [p.pos[0] - pos[0], p.pos[1] - pos[1], p.pos[2] - pos[2]];
                        let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps * eps;
                        let inv = 1.0 / (d2 * d2.sqrt());
                        for k in 0..3 {
                            acc[k] += p.mass * dx[k] * inv;
                        }
                    }
                } else {
                    let d2e = d2 + eps * eps;
                    let inv = 1.0 / (d2e * d2e.sqrt());
                    for k in 0..3 {
                        acc[k] += n.mass * dx[k] * inv;
                    }
                }
            } else {
                for i in 0..8 {
                    stack.push(n.child as usize + i);
                }
            }
        }
        acc
    }

    /// The root's total mass and centre of mass.
    pub fn root_summary(&self) -> (f64, [f64; 3]) {
        (self.nodes[0].mass, self.nodes[0].com)
    }

    /// Extracts coarse pseudo-particles: nodes at `depth` (or leaves
    /// above it) as point masses — the multipole summary sent to peers.
    pub fn summary(&self, depth: usize) -> Vec<([f64; 3], f64)> {
        let mut out = Vec::new();
        let mut stack = vec![(0usize, 0usize)];
        while let Some((ni, d)) = stack.pop() {
            let n = &self.nodes[ni];
            if n.mass == 0.0 {
                continue;
            }
            if n.child < 0 || d >= depth {
                out.push((n.com, n.mass));
            } else {
                for i in 0..8 {
                    stack.push((n.child as usize + i, d + 1));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

fn encode_pseudo(ps: &[([f64; 3], f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ps.len() * 32);
    for (com, m) in ps {
        for c in com {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&m.to_le_bytes());
    }
    out
}

fn decode_pseudo(data: &[u8]) -> Vec<([f64; 3], f64)> {
    data.chunks_exact(32)
        .map(|c| {
            let f = |i: usize| f64::from_le_bytes(c[i * 8..(i + 1) * 8].try_into().unwrap());
            ([f(0), f(1), f(2)], f(3))
        })
        .collect()
}

fn encode_particles(ps: &[Particle]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ps.len() * 56);
    for p in ps {
        for v in p.pos.iter().chain(p.vel.iter()).chain(std::iter::once(&p.mass)) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn decode_particles(data: &[u8]) -> Vec<Particle> {
    data.chunks_exact(56)
        .map(|c| {
            let f = |i: usize| f64::from_le_bytes(c[i * 8..(i + 1) * 8].try_into().unwrap());
            Particle { pos: [f(0), f(1), f(2)], vel: [f(3), f(4), f(5)], mass: f(6) }
        })
        .collect()
}

/// Per-task force results: (chunk start index, accelerations).
type ChunkAccels = Vec<(usize, Vec<[f64; 3]>)>;

struct Inbox {
    summaries: Mutex<Vec<([f64; 3], f64)>>,
    summaries_from: AtomicUsize,
    migrants: Mutex<Vec<Particle>>,
    migrants_from: AtomicUsize,
}

/// Runs octo-mini on `rank`; every rank calls this with identical `cfg`.
pub fn run_octo_rank(fabric: Arc<Fabric>, rank: usize, cfg: OctoConfig) -> StepStats {
    let nranks = fabric.nranks();
    let pool = Arc::new(Pool::new(cfg.nthreads));
    let world = World::new(fabric.clone(), rank, cfg.world);
    let port = Parcelport::new(&world, pool.clone());

    let inbox = Arc::new(Inbox {
        summaries: Mutex::new(Vec::new()),
        summaries_from: AtomicUsize::new(0),
        migrants: Mutex::new(Vec::new()),
        migrants_from: AtomicUsize::new(0),
    });

    // Action 0: multipole summary from a peer.
    let ib = inbox.clone();
    port.register_action(move |_src, data| {
        let ps = decode_pseudo(&data);
        ib.summaries.lock().extend(ps);
        ib.summaries_from.fetch_add(1, Ordering::AcqRel);
    });
    // Action 1: migrated particles.
    let ib = inbox.clone();
    port.register_action(move |_src, data| {
        let ps = decode_particles(&data);
        ib.migrants.lock().extend(ps);
        ib.migrants_from.fetch_add(1, Ordering::AcqRel);
    });
    port.attach();
    fabric.oob_barrier();

    let mut particles = init_particles(&cfg, rank, nranks);
    let mut step_times = Vec::with_capacity(cfg.steps);

    for _step in 0..cfg.steps {
        let t0 = Instant::now();

        // Phase 1: local tree + summary exchange. Parcels are issued
        // concurrently from pool tasks — the multithreaded posting
        // pattern of AMT runtimes (paper §5.4) — while idle workers
        // progress the network.
        let tree = Octree::build(&particles);
        let summary = Arc::new(encode_pseudo(&tree.summary(3)));
        for peer in (0..nranks).filter(|&p| p != rank) {
            let port = port.clone();
            let summary = summary.clone();
            pool.spawn(move || port.send(peer, 0, &summary));
        }
        while inbox.summaries_from.load(Ordering::Acquire) < nranks - 1 || pool.pending() > 0 {
            pool.help_progress();
            std::thread::yield_now();
        }
        let remote: Vec<([f64; 3], f64)> = std::mem::take(&mut *inbox.summaries.lock());
        inbox.summaries_from.store(0, Ordering::Release);

        // Phase 2: force tasks over particle chunks.
        let snapshot: Arc<Vec<Particle>> = Arc::new(particles.clone());
        let tree = Arc::new(tree);
        let remote = Arc::new(remote);
        let results: Arc<Mutex<ChunkAccels>> = Arc::new(Mutex::new(Vec::new()));
        let ntasks = snapshot.len().div_ceil(cfg.chunk).max(1);
        for task in 0..ntasks {
            let snapshot = snapshot.clone();
            let tree = tree.clone();
            let remote = remote.clone();
            let results = results.clone();
            let (theta, eps, chunk) = (cfg.theta, cfg.eps, cfg.chunk);
            pool.spawn(move || {
                let start = task * chunk;
                let end = (start + chunk).min(snapshot.len());
                let mut acc = Vec::with_capacity(end - start);
                for p in &snapshot[start..end] {
                    let mut a = tree.accel(p.pos, theta, eps, &snapshot);
                    for (com, m) in remote.iter() {
                        let dx = [com[0] - p.pos[0], com[1] - p.pos[1], com[2] - p.pos[2]];
                        let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps * eps;
                        let inv = m / (d2 * d2.sqrt());
                        for k in 0..3 {
                            a[k] += dx[k] * inv;
                        }
                    }
                    acc.push(a);
                }
                results.lock().push((start, acc));
            });
        }
        while pool.pending() > 0 {
            pool.help_progress();
            std::thread::yield_now();
        }

        // Phase 3: integrate (Euler-Cromer) and migrate.
        for (start, acc) in results.lock().drain(..) {
            for (i, a) in acc.into_iter().enumerate() {
                let p = &mut particles[start + i];
                for k in 0..3 {
                    p.vel[k] += cfg.dt * a[k];
                    p.pos[k] += cfg.dt * p.vel[k];
                }
            }
        }
        let mut outgoing: Vec<Vec<Particle>> = vec![Vec::new(); nranks];
        particles.retain(|p| {
            let o = owner_of(p.pos[0], nranks);
            if o == rank {
                true
            } else {
                outgoing[o].push(*p);
                false
            }
        });
        for peer in (0..nranks).filter(|&p| p != rank) {
            let port = port.clone();
            let bytes = encode_particles(&outgoing[peer]);
            pool.spawn(move || port.send(peer, 1, &bytes));
        }
        while inbox.migrants_from.load(Ordering::Acquire) < nranks - 1 || pool.pending() > 0 {
            pool.help_progress();
            std::thread::yield_now();
        }
        particles.extend(inbox.migrants.lock().drain(..));
        inbox.migrants_from.store(0, Ordering::Release);

        // End-of-step barrier rides the data path on the LCI backend
        // (dissemination over send/recv); baselines use the OOB channel.
        if world.lci_runtime().is_some() {
            world.barrier().expect("data-path step barrier");
        } else {
            fabric.oob_barrier();
        }
        step_times.push(t0.elapsed());
    }

    let momentum_proxy = particles
        .iter()
        .map(|p| (p.vel[0] * p.vel[0] + p.vel[1] * p.vel[1] + p.vel[2] * p.vel[2]).sqrt())
        .sum();
    StepStats {
        step_times,
        parcels_sent: port.sent_count(),
        final_local_particles: particles.len(),
        momentum_proxy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcw::{BackendKind, Platform, ResourceMode};

    fn small_cfg(backend: BackendKind) -> OctoConfig {
        OctoConfig {
            n_particles: 400,
            steps: 2,
            nthreads: 2,
            chunk: 64,
            world: WorldConfig::new(
                backend,
                Platform::Expanse,
                if backend == BackendKind::Lci {
                    ResourceMode::Dedicated(2)
                } else {
                    ResourceMode::Shared
                },
            ),
            ..OctoConfig::default()
        }
    }

    fn run(nranks: usize, cfg: OctoConfig) -> Vec<StepStats> {
        let fabric = Fabric::new(nranks);
        let handles: Vec<_> = (0..nranks)
            .map(|r| {
                let fabric = fabric.clone();
                std::thread::spawn(move || run_octo_rank(fabric, r, cfg))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn octree_accel_matches_direct_sum_when_theta_zero() {
        let parts: Vec<Particle> = (0..100)
            .map(|i| {
                let f = i as f64 / 100.0;
                Particle {
                    pos: [f - 0.5, (f * 7.0) % 1.0 - 0.5, (f * 13.0) % 1.0 - 0.5],
                    vel: [0.0; 3],
                    mass: 0.01,
                }
            })
            .collect();
        let tree = Octree::build(&parts);
        let probe = [0.3, -0.2, 0.1];
        let eps = 1e-2;
        // theta=0 forces full opening -> exact direct sum.
        let a_tree = tree.accel(probe, 0.0, eps, &parts);
        let mut a_direct = [0.0; 3];
        for p in &parts {
            let dx = [p.pos[0] - probe[0], p.pos[1] - probe[1], p.pos[2] - probe[2]];
            let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps * eps;
            let inv = 1.0 / (d2 * d2.sqrt());
            for k in 0..3 {
                a_direct[k] += p.mass * dx[k] * inv;
            }
        }
        for k in 0..3 {
            assert!((a_tree[k] - a_direct[k]).abs() < 1e-9, "{a_tree:?} vs {a_direct:?}");
        }
    }

    #[test]
    fn bh_approximation_close_to_direct() {
        let parts: Vec<Particle> = (0..500)
            .map(|i| {
                let f = i as f64;
                Particle {
                    pos: [(f * 0.7).sin() * 0.8, (f * 1.3).cos() * 0.8, ((f * 0.37).sin() * 0.8)],
                    vel: [0.0; 3],
                    mass: 0.002,
                }
            })
            .collect();
        let tree = Octree::build(&parts);
        let probe = [0.0, 0.0, 0.9];
        let exact = tree.accel(probe, 0.0, 1e-2, &parts);
        let approx = tree.accel(probe, 0.5, 1e-2, &parts);
        let norm = |v: [f64; 3]| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        let err = norm([exact[0] - approx[0], exact[1] - approx[1], exact[2] - approx[2]])
            / norm(exact).max(1e-12);
        assert!(err < 0.05, "BH relative error too large: {err}");
    }

    #[test]
    fn conserves_global_particle_count() {
        for nranks in [1usize, 2, 3] {
            let stats = run(nranks, small_cfg(BackendKind::Lci));
            let total: usize = stats.iter().map(|s| s.final_local_particles).sum();
            assert_eq!(total, 400, "nranks={nranks}");
        }
    }

    #[test]
    fn parcels_flow_and_steps_timed() {
        let stats = run(2, small_cfg(BackendKind::Lci));
        for s in &stats {
            assert_eq!(s.step_times.len(), 2);
            // 1 summary + 1 migration parcel per peer per step.
            assert_eq!(s.parcels_sent, 4);
            assert!(s.momentum_proxy.is_finite());
        }
    }

    #[test]
    fn mpi_backend_runs() {
        let stats = run(2, small_cfg(BackendKind::Mpi));
        let total: usize = stats.iter().map(|s| s.final_local_particles).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn vci_backend_runs() {
        let mut cfg = small_cfg(BackendKind::Vci);
        cfg.world = WorldConfig::new(BackendKind::Vci, Platform::Delta, ResourceMode::Dedicated(2));
        let stats = run(2, cfg);
        let total: usize = stats.iter().map(|s| s.final_local_particles).sum();
        assert_eq!(total, 400);
    }
}
