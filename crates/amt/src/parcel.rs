//! The parcelport: the AMT runtime's network layer (HPX terminology).
//!
//! A *parcel* is (destination rank, action id, payload). Incoming
//! parcels spawn their registered action as a *task* on the scheduler —
//! unlike AM handlers, actions are unrestricted (they may communicate,
//! block on futures, spawn work), which is the RPC-vs-AM distinction of
//! paper §3.2.
//!
//! The port keeps one LCW endpoint per pool worker (dedicated-resource
//! mode maps each onto an LCI device / MPICH VCI); the pool's idle hook
//! drives progress on the worker's own endpoint, the all-worker
//! progress setup.

use crate::sched::Pool;
use lcw::{Endpoint, World};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An action: invoked with (source rank, payload).
pub type Action = Arc<dyn Fn(usize, Vec<u8>) + Send + Sync>;

/// The parcelport.
pub struct Parcelport {
    endpoints: Vec<Mutex<Endpoint>>,
    actions: lci_fabric::sync::MpmcArray<Action>,
    pool: Arc<Pool>,
    rank: usize,
    nranks: usize,
    /// Parcels sent/received (diagnostics & quiescence accounting).
    sent: AtomicU64,
    delivered: AtomicU64,
}

impl Parcelport {
    /// Creates the port over `world`, one endpoint per pool worker.
    /// Actions must be registered (in identical order on every rank)
    /// before any parcel traffic.
    pub fn new(world: &World, pool: Arc<Pool>) -> Arc<Parcelport> {
        let n = pool.nthreads();
        let endpoints = (0..n).map(|t| Mutex::new(world.endpoint(t))).collect();
        Arc::new(Parcelport {
            endpoints,
            actions: lci_fabric::sync::MpmcArray::with_capacity(8),
            pool,
            rank: world.rank(),
            nranks: world.size(),
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        })
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Registers an action; returns its id.
    pub fn register_action(&self, f: impl Fn(usize, Vec<u8>) + Send + Sync + 'static) -> u32 {
        self.actions.push(Arc::new(f)) as u32
    }

    /// Installs this port as the pool's idle hook. Call once after all
    /// actions are registered.
    pub fn attach(self: &Arc<Self>) {
        let port = self.clone();
        self.pool.set_idle_hook(move |worker| port.progress_worker(worker));
    }

    /// Sends a parcel. Retries internally (progressing the sender's own
    /// endpoint) until the payload is accepted.
    pub fn send(&self, dest: usize, action: u32, payload: &[u8]) {
        let idx = crate::sched::Pool::current_worker().unwrap_or(0) % self.endpoints.len();
        let mut ep = self.endpoints[idx].lock();
        while !ep.send_am(dest, payload, action) {
            ep.progress();
            drop(ep);
            // Let this worker serve inbound parcels while blocked.
            self.progress_worker(idx);
            ep = self.endpoints[idx].lock();
        }
        self.sent.fetch_add(1, Ordering::AcqRel);
    }

    /// Progress entry point (idle hook): polls the worker's endpoint and
    /// spawns actions for delivered parcels.
    pub fn progress_worker(&self, worker: usize) -> bool {
        let idx = if worker == usize::MAX { 0 } else { worker % self.endpoints.len() };
        let Some(mut ep) = self.endpoints[idx].try_lock() else {
            return false;
        };
        let mut did = ep.progress();
        // Bounded drain so one poll cannot monopolize the worker.
        for _ in 0..16 {
            let Some(msg) = ep.poll_msg() else { break };
            did = true;
            let action = self.actions.read(msg.tag as usize).expect("unregistered parcel action");
            let src = msg.src;
            let data = msg.data;
            self.delivered.fetch_add(1, Ordering::AcqRel);
            self.pool.spawn(move || action(src, data));
        }
        did
    }

    /// Parcels sent by this rank.
    pub fn sent_count(&self) -> u64 {
        self.sent.load(Ordering::Acquire)
    }

    /// Parcels delivered to this rank.
    pub fn delivered_count(&self) -> u64 {
        self.delivered.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lci_fabric::Fabric;
    use lcw::{BackendKind, Platform, ResourceMode, WorldConfig};
    use std::sync::atomic::AtomicU64 as A64;

    fn two_rank_port_test(backend: BackendKind, mode: ResourceMode) {
        let fabric = Fabric::new(2);
        let cfg = WorldConfig::new(backend, Platform::Expanse, mode);
        let f2 = fabric.clone();
        let t = std::thread::spawn(move || {
            let pool = Arc::new(Pool::new(2));
            let world = World::new(f2.clone(), 1, cfg);
            let port = Parcelport::new(&world, pool.clone());
            let got = Arc::new(A64::new(0));
            let g = got.clone();
            let port2 = port.clone();
            port.register_action(move |src, data| {
                // Actions may communicate: echo back.
                assert_eq!(src, 0);
                g.fetch_add(data.len() as u64, Ordering::SeqCst);
                port2.send(0, 0, &data);
            });
            port.attach();
            f2.oob_barrier();
            while got.load(Ordering::SeqCst) < 10 * 64 {
                pool.help_progress();
                std::thread::yield_now();
            }
            f2.oob_barrier();
        });
        let pool = Arc::new(Pool::new(2));
        let world = World::new(fabric.clone(), 0, cfg);
        let port = Parcelport::new(&world, pool.clone());
        let echoed = Arc::new(A64::new(0));
        let e = echoed.clone();
        port.register_action(move |src, data| {
            assert_eq!(src, 1);
            e.fetch_add(data.len() as u64, Ordering::SeqCst);
        });
        port.attach();
        fabric.oob_barrier();
        for _ in 0..10 {
            port.send(1, 0, &[7u8; 64]);
        }
        while echoed.load(Ordering::SeqCst) < 10 * 64 {
            pool.help_progress();
            std::thread::yield_now();
        }
        fabric.oob_barrier();
        t.join().unwrap();
    }

    #[test]
    fn parcel_echo_lci_dedicated() {
        two_rank_port_test(BackendKind::Lci, ResourceMode::Dedicated(2));
    }

    #[test]
    fn parcel_echo_mpi_shared() {
        two_rank_port_test(BackendKind::Mpi, ResourceMode::Shared);
    }

    #[test]
    fn parcel_echo_vci() {
        two_rank_port_test(BackendKind::Vci, ResourceMode::Dedicated(2));
    }
}
