//! A work-stealing task scheduler: the HPX thread-pool analog.
//!
//! Workers run tasks from their own deque, steal from peers or the
//! global injector when empty, and invoke the *idle hook* when there is
//! nothing to run — which is where an AMT runtime progresses its
//! network (the all-worker setup of paper §5.3/§5.4).

use crossbeam::deque::{Injector, Stealer, Worker};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

type Task = Box<dyn FnOnce() + Send>;

/// The idle hook: called by a worker (with its worker index) when it has
/// no task to run. Returning `true` means useful work was done.
pub type IdleHook = Box<dyn Fn(usize) -> bool + Send + Sync>;

struct PoolShared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    idle: parking_lot::RwLock<Option<IdleHook>>,
}

thread_local! {
    static WORKER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// A work-stealing thread pool.
pub struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    nthreads: usize,
}

impl Pool {
    /// Starts a pool with `nthreads` workers.
    pub fn new(nthreads: usize) -> Pool {
        assert!(nthreads >= 1);
        let workers: Vec<Worker<Task>> = (0..nthreads).map(|_| Worker::new_fifo()).collect();
        let stealers = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers,
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle: parking_lot::RwLock::new(None),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("amt-worker-{i}"))
                    .spawn(move || worker_loop(i, w, shared))
                    .expect("spawn worker")
            })
            .collect();
        Pool { shared, handles, nthreads }
    }

    /// Number of workers.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Installs the idle hook (e.g. parcelport progress).
    pub fn set_idle_hook(&self, hook: impl Fn(usize) -> bool + Send + Sync + 'static) {
        *self.shared.idle.write() = Some(Box::new(hook));
    }

    /// Spawns a task.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.injector.push(Box::new(f));
    }

    /// Current worker index, or `None` when called from outside the pool.
    pub fn current_worker() -> Option<usize> {
        let id = WORKER_ID.with(|w| w.get());
        (id != usize::MAX).then_some(id)
    }

    /// Number of spawned-but-unfinished tasks.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Blocks the calling (non-worker) thread until every spawned task
    /// has finished. The caller must guarantee the task graph quiesces.
    pub fn wait_quiescent(&self) {
        while self.pending() > 0 {
            std::thread::yield_now();
        }
    }

    /// Runs idle-hook work from the calling thread too (useful on the
    /// rank main thread while waiting).
    pub fn help_progress(&self) -> bool {
        let idle = self.shared.idle.read();
        match idle.as_ref() {
            Some(hook) => hook(usize::MAX),
            None => false,
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(id: usize, local: Worker<Task>, shared: Arc<PoolShared>) {
    WORKER_ID.with(|w| w.set(id));
    let backoff = crossbeam::utils::Backoff::new();
    loop {
        // 1. Local deque.
        let task = local.pop().or_else(|| {
            // 2. Global injector (batch-steal into the local deque).
            std::iter::repeat_with(|| shared.injector.steal_batch_and_pop(&local))
                .find(|s| !s.is_retry())
                .and_then(|s| s.success())
                .or_else(|| {
                    // 3. Steal from a sibling.
                    shared
                        .stealers
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != id)
                        .map(|(_, s)| s.steal())
                        .find_map(|s| s.success())
                })
        });
        match task {
            Some(t) => {
                backoff.reset();
                t();
                shared.pending.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // 4. Idle: progress communication, then back off.
                let did = {
                    let idle = shared.idle.read();
                    idle.as_ref().map(|h| h(id)).unwrap_or(false)
                };
                if did {
                    backoff.reset();
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_tasks() {
        let pool = Pool::new(3);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 0..1000u64 {
            let sum = sum.clone();
            pool.spawn(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.wait_quiescent();
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = Arc::new(Pool::new(2));
        let count = Arc::new(AtomicU64::new(0));
        {
            let pool2 = pool.clone();
            let count = count.clone();
            pool.spawn(move || {
                for _ in 0..10 {
                    let c = count.clone();
                    pool2.spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        pool.wait_quiescent();
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn idle_hook_invoked() {
        let pool = Pool::new(2);
        let polls = Arc::new(AtomicU64::new(0));
        let p = polls.clone();
        pool.set_idle_hook(move |_| {
            p.fetch_add(1, Ordering::Relaxed);
            false
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(polls.load(Ordering::Relaxed) > 0, "idle workers must poll");
    }

    #[test]
    fn current_worker_inside_and_outside() {
        assert!(Pool::current_worker().is_none());
        let pool = Pool::new(2);
        let seen = Arc::new(AtomicU64::new(u64::MAX));
        let s = seen.clone();
        pool.spawn(move || {
            s.store(Pool::current_worker().unwrap() as u64, Ordering::SeqCst);
        });
        pool.wait_quiescent();
        assert!(seen.load(Ordering::SeqCst) < 2);
    }
}
