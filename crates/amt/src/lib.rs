//! # amt — a mini asynchronous-many-task runtime and the octo-mini app
//! (paper §5.4)
//!
//! The paper's second application benchmark runs Octo-Tiger (an
//! astrophysics code built on adaptive octrees and fast multipole
//! methods) on HPX, comparing HPX parcelports backed by LCI, standard
//! MPI, and MPICH-VCI. Neither HPX nor Octo-Tiger is reproducible here
//! wholesale; instead this crate builds the pieces that carry the
//! paper's communication argument:
//!
//! * [`sched`] — a work-stealing task scheduler (the HPX thread pool
//!   analog) with an *idle hook* so idle workers progress communication,
//!   the all-worker pattern of AMT runtimes;
//! * [`future`] — promise/future plumbing with continuations scheduled
//!   as tasks (task-dependency execution);
//! * [`parcel`] — the parcelport abstraction (HPX's network layer):
//!   registered actions invoked by incoming parcels, backed by any LCW
//!   endpoint (LCI / MPI / VCI / GASNet), with per-worker endpoints when
//!   the backend supports dedicated resources;
//! * [`octo`] — *octo-mini*: a rotating-star Barnes-Hut simulation over
//!   a rank-partitioned domain with multipole-summary exchange and
//!   particle migration each step, generating the heavily multithreaded
//!   fine-grained communication the paper measures (Fig. 7).

pub mod future;
pub mod octo;
pub mod parcel;
pub mod sched;

pub use future::{Future, Promise};
pub use octo::{run_octo_rank, OctoConfig, StepStats};
pub use parcel::Parcelport;
pub use sched::Pool;
