//! Promise/future plumbing with task-scheduled continuations — the
//! dependency mechanism AMT programs express their graphs with.
//!
//! A [`Promise`] is the write side; its [`Future`] is the read side.
//! Continuations registered with [`Future::then`] run as pool tasks once
//! the value arrives (never inline in the setter when a pool is
//! attached, mirroring HPX's `future::then` semantics).

use crate::sched::Pool;
use lci_fabric::sync::SpinLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A continuation registered with [`Future::then`].
type Continuation<T> = Box<dyn FnOnce(Arc<T>) + Send>;

struct FutState<T> {
    value: SpinLock<Option<Arc<T>>>,
    conts: SpinLock<Vec<Continuation<T>>>,
    ready: AtomicBool,
    pool: SpinLock<Option<Arc<Pool>>>,
}

/// Write side of a future.
pub struct Promise<T> {
    state: Arc<FutState<T>>,
}

/// Read side of a promise.
#[derive(Clone)]
pub struct Future<T> {
    state: Arc<FutState<T>>,
}

/// Creates a connected promise/future pair. Continuations are spawned on
/// `pool` when provided, otherwise run inline at set time.
pub fn channel<T: Send + Sync + 'static>(pool: Option<Arc<Pool>>) -> (Promise<T>, Future<T>) {
    let state = Arc::new(FutState {
        value: SpinLock::new(None),
        conts: SpinLock::new(Vec::new()),
        ready: AtomicBool::new(false),
        pool: SpinLock::new(pool),
    });
    (Promise { state: state.clone() }, Future { state })
}

impl<T: Send + Sync + 'static> Promise<T> {
    /// Fulfils the promise, firing continuations.
    pub fn set(self, value: T) {
        let v = Arc::new(value);
        *self.state.value.lock() = Some(v.clone());
        self.state.ready.store(true, Ordering::Release);
        let conts: Vec<_> = std::mem::take(&mut *self.state.conts.lock());
        let pool = self.state.pool.lock().clone();
        for c in conts {
            let v = v.clone();
            match &pool {
                Some(p) => p.spawn(move || c(v)),
                None => c(v),
            }
        }
    }
}

impl<T: Send + Sync + 'static> Future<T> {
    /// Whether the value has arrived.
    pub fn is_ready(&self) -> bool {
        self.state.ready.load(Ordering::Acquire)
    }

    /// The value, if ready (shared).
    pub fn get(&self) -> Option<Arc<T>> {
        if !self.is_ready() {
            return None;
        }
        self.state.value.lock().clone()
    }

    /// Registers a continuation; runs as a pool task (or inline if the
    /// value already arrived and no pool is attached).
    pub fn then(&self, f: impl FnOnce(Arc<T>) + Send + 'static) {
        // Fast path: already ready.
        if self.is_ready() {
            let v = self.state.value.lock().clone().expect("ready without value");
            let pool = self.state.pool.lock().clone();
            match pool {
                Some(p) => p.spawn(move || f(v)),
                None => f(v),
            }
            return;
        }
        let mut conts = self.state.conts.lock();
        // Re-check under the lock (set may have raced).
        if self.is_ready() {
            drop(conts);
            let v = self.state.value.lock().clone().expect("ready without value");
            let pool = self.state.pool.lock().clone();
            match pool {
                Some(p) => p.spawn(move || f(v)),
                None => f(v),
            }
            return;
        }
        conts.push(Box::new(f));
    }

    /// Spin-waits for the value, running `progress` between polls.
    pub fn wait_with(&self, mut progress: impl FnMut()) -> Arc<T> {
        while !self.is_ready() {
            progress();
            std::hint::spin_loop();
        }
        self.get().expect("ready without value")
    }
}

/// A future that completes when `n` constituent events complete.
pub struct Latch {
    remaining: std::sync::atomic::AtomicUsize,
    promise: SpinLock<Option<Promise<()>>>,
    future: Future<()>,
}

impl Latch {
    /// Creates a latch expecting `n` count-downs.
    pub fn new(n: usize, pool: Option<Arc<Pool>>) -> Arc<Latch> {
        let (p, f) = channel(pool);
        let latch = Latch {
            remaining: std::sync::atomic::AtomicUsize::new(n),
            promise: SpinLock::new(Some(p)),
            future: f,
        };
        if n == 0 {
            latch.promise.lock().take().unwrap().set(());
        }
        Arc::new(latch)
    }

    /// Counts down one event.
    pub fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let Some(p) = self.promise.lock().take() {
                p.set(());
            }
        }
    }

    /// The latch's completion future.
    pub fn future(&self) -> Future<()> {
        self.future.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn set_then_get() {
        let (p, f) = channel::<u32>(None);
        assert!(!f.is_ready());
        p.set(5);
        assert!(f.is_ready());
        assert_eq!(*f.get().unwrap(), 5);
    }

    #[test]
    fn continuation_before_set() {
        let (p, f) = channel::<u32>(None);
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        f.then(move |v| {
            h.store(*v as u64, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 0);
        p.set(77);
        assert_eq!(hit.load(Ordering::SeqCst), 77);
    }

    #[test]
    fn continuation_after_set() {
        let (p, f) = channel::<u32>(None);
        p.set(9);
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        f.then(move |v| {
            h.store(*v as u64, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn continuations_run_on_pool() {
        let pool = Arc::new(Pool::new(2));
        let (p, f) = channel::<u32>(Some(pool.clone()));
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        f.then(move |v| {
            // `current_worker` is Some only on a pool thread — the unwrap
            // is the actual assertion here.
            let _worker = Pool::current_worker().unwrap();
            h.store(*v as u64, Ordering::SeqCst);
        });
        p.set(31);
        pool.wait_quiescent();
        assert_eq!(hit.load(Ordering::SeqCst), 31);
    }

    #[test]
    fn latch_counts() {
        let latch = Latch::new(3, None);
        assert!(!latch.future().is_ready());
        latch.count_down();
        latch.count_down();
        assert!(!latch.future().is_ready());
        latch.count_down();
        assert!(latch.future().is_ready());
    }

    #[test]
    fn zero_latch_ready_immediately() {
        let latch = Latch::new(0, None);
        assert!(latch.future().is_ready());
    }
}
