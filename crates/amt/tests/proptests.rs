//! Property-based tests for the AMT substrate: scheduler task
//! accounting, future/latch laws, octree physics invariants, and
//! particle-serialization codecs.

use amt::octo::{Octree, Particle};
use amt::sched::Pool;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn arb_particles(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Particle>> {
    proptest::collection::vec(
        (prop::array::uniform3(-1.0f64..1.0), prop::array::uniform3(-0.1f64..0.1), 0.001f64..0.1)
            .prop_map(|(pos, vel, mass)| Particle { pos, vel, mass }),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Octree total mass and centre of mass match the direct sums.
    #[test]
    fn octree_mass_conservation(parts in arb_particles(1..200)) {
        let tree = Octree::build(&parts);
        let (mass, com) = tree.root_summary();
        let direct_mass: f64 = parts.iter().map(|p| p.mass).sum();
        prop_assert!((mass - direct_mass).abs() < 1e-9);
        for (d, &c) in com.iter().enumerate() {
            let direct: f64 =
                parts.iter().map(|p| p.mass * p.pos[d]).sum::<f64>() / direct_mass;
            prop_assert!((c - direct).abs() < 1e-9, "com[{d}]: {c} vs {direct}");
        }
    }

    /// theta = 0 tree traversal equals the direct O(n) sum at any probe.
    #[test]
    fn accel_exact_at_theta_zero(parts in arb_particles(1..100), probe in prop::array::uniform3(-1.0f64..1.0)) {
        let eps = 0.05;
        let tree = Octree::build(&parts);
        let a = tree.accel(probe, 0.0, eps, &parts);
        let mut direct = [0.0f64; 3];
        for p in &parts {
            let dx = [p.pos[0] - probe[0], p.pos[1] - probe[1], p.pos[2] - probe[2]];
            let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps * eps;
            let inv = 1.0 / (d2 * d2.sqrt());
            for k in 0..3 {
                direct[k] += p.mass * dx[k] * inv;
            }
        }
        for k in 0..3 {
            prop_assert!((a[k] - direct[k]).abs() < 1e-9 * (1.0 + direct[k].abs()));
        }
    }

    /// The coarse summary conserves mass at every cut depth.
    #[test]
    fn summary_mass_conserved(parts in arb_particles(1..150), depth in 0usize..6) {
        let tree = Octree::build(&parts);
        let summary = tree.summary(depth);
        let total: f64 = summary.iter().map(|(_, m)| m).sum();
        let direct: f64 = parts.iter().map(|p| p.mass).sum();
        prop_assert!((total - direct).abs() < 1e-9);
    }

    /// Scheduler: every spawned task runs exactly once under arbitrary
    /// task counts and pool widths.
    #[test]
    fn pool_runs_each_task_once(ntasks in 1usize..300, width in 1usize..4) {
        let pool = Pool::new(width);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..ntasks {
            let hits = hits.clone();
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_quiescent();
        prop_assert_eq!(hits.load(Ordering::Relaxed), ntasks as u64);
    }

    /// Latch fires exactly at n count-downs.
    #[test]
    fn latch_threshold(n in 0usize..64) {
        let latch = amt::future::Latch::new(n, None);
        for i in 0..n {
            prop_assert_eq!(latch.future().is_ready(), false, "early at {}/{}", i, n);
            latch.count_down();
        }
        prop_assert!(latch.future().is_ready());
    }
}
