//! Paper Figure 3: thread-based message-rate microbenchmark.
//!
//! One process per "node", one thread per core; each thread ping-pongs
//! 8-byte active messages with its peer thread. Four panels: dedicated
//! vs shared resources × Expanse(ibv-sim) vs Delta(ofi-sim).
//!
//! Series per panel (as in the paper):
//! * dedicated: lci (one device/thread), mpix (one VCI/thread) — the
//!   paper notes Cray-MPICH and GASNet-EX do not support this mode;
//! * shared: lci, mpi, mpix(1 VCI ≙ mpi with the VCI code path), gasnet.

use bench::{
    iters, lib_name, msgrate_thread_based, platform_name, platform_sweep, print_header, print_row,
    thread_sweep,
};
use lcw::{BackendKind, ResourceMode};

fn main() {
    let sweep = thread_sweep();
    let iters = iters();
    println!("# Fig 3: thread-based message rate (8 B, ping-pong)");
    println!("# paper: 1-128 threads, 100k iters; here: {sweep:?} threads, {iters} iters");

    for platform in platform_sweep() {
        // Dedicated-resource panels (Fig 3a / 3c).
        print_header(
            &format!("Fig3 dedicated {}", platform_name(platform)),
            &["threads", "lib", "Mmsg/s"],
        );
        for &t in &sweep {
            for backend in [BackendKind::Lci, BackendKind::Vci] {
                let rate = msgrate_thread_based(
                    backend,
                    platform,
                    ResourceMode::Dedicated(t),
                    t,
                    iters,
                    8,
                );
                print_row(&[t.to_string(), lib_name(backend).to_string(), format!("{rate:.4}")]);
            }
        }

        // Shared-resource panels (Fig 3b / 3d).
        print_header(
            &format!("Fig3 shared {}", platform_name(platform)),
            &["threads", "lib", "Mmsg/s"],
        );
        for &t in &sweep {
            for backend in [BackendKind::Lci, BackendKind::Mpi, BackendKind::Gasnet] {
                let rate =
                    msgrate_thread_based(backend, platform, ResourceMode::Shared, t, iters, 8);
                print_row(&[t.to_string(), lib_name(backend).to_string(), format!("{rate:.4}")]);
            }
        }
    }
}
