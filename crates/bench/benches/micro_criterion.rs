//! Criterion microbenchmarks of the single-threaded hot paths: the
//! statistically-rigorous counterpart of the figure harnesses, useful
//! for regression-tracking individual resources (paper §4.1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lci::{
    Comp, CompDesc, CompQueue, CqConfig, CqImpl, MatchKind, MatchingEngine, PacketPool,
    PacketPoolConfig, PostResult, Runtime, RuntimeConfig,
};
use lci_fabric::Fabric;

fn bench_comp_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("comp_queue");
    g.throughput(Throughput::Elements(1));
    for (name, imp) in
        [("faa_array", CqImpl::FaaArray), ("lcrq", CqImpl::Lcrq), ("segmented", CqImpl::Segmented)]
    {
        let q = CompQueue::new(CqConfig { imp, capacity: 8192 });
        g.bench_function(format!("push_pop/{name}"), |b| {
            b.iter(|| {
                q.push(CompDesc::empty());
                std::hint::black_box(q.pop());
            })
        });
    }
    g.finish();
}

fn bench_matching_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching_engine");
    g.throughput(Throughput::Elements(2));
    let me: MatchingEngine<u64> = MatchingEngine::new();
    let mut key = 0u64;
    g.bench_function("insert_match_pair", |b| {
        b.iter(|| {
            key = key.wrapping_add(1) & 0xFFFF;
            assert!(me.insert(key, 1, MatchKind::Send).is_none());
            assert!(me.insert(key, 2, MatchKind::Recv).is_some());
        })
    });
    g.finish();
}

fn bench_packet_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_pool");
    g.throughput(Throughput::Elements(1));
    let pool = PacketPool::new(PacketPoolConfig { payload_size: 8192, count: 64 }).unwrap();
    g.bench_function("get_put", |b| {
        b.iter(|| {
            let p = pool.get().unwrap();
            std::hint::black_box(&p);
        })
    });
    g.finish();
}

fn bench_post_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("post_path");
    g.throughput(Throughput::Elements(1));
    // Single-rank fabric: self-send exercises the full post+progress path.
    let fabric = Fabric::new(1);
    let rt = Runtime::new(fabric, 0, RuntimeConfig::small()).unwrap();
    let cq = Comp::alloc_cq();
    let rcomp = rt.register_rcomp(cq.clone());
    let noop = Comp::alloc_handler(|_| {});

    g.bench_function("am_inject_selfsend_8B", |b| {
        b.iter(|| {
            while let PostResult::Retry(_) =
                rt.post_am(0, [0u8; 8].as_slice(), noop.clone(), rcomp).unwrap()
            {
                rt.progress().unwrap();
            }
            loop {
                rt.progress().unwrap();
                if cq.pop().is_some() {
                    break;
                }
            }
        })
    });

    g.bench_function("am_bcopy_selfsend_1KiB", |b| {
        let payload = vec![0u8; 1024];
        b.iter_batched(
            || payload.clone(),
            |p| {
                while let PostResult::Retry(_) =
                    rt.post_am(0, p.as_slice(), noop.clone(), rcomp).unwrap()
                {
                    rt.progress().unwrap();
                }
                loop {
                    rt.progress().unwrap();
                    if cq.pop().is_some() {
                        break;
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_wire_header(c: &mut Criterion) {
    use lci::proto::{Header, MsgType};
    use lci::MatchingPolicy;
    let mut g = c.benchmark_group("wire_header");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_decode", |b| {
        b.iter(|| {
            let h = Header::new(MsgType::Eager, MatchingPolicy::RankTag, 12345, 678);
            let imm = std::hint::black_box(h.encode());
            std::hint::black_box(Header::decode(imm).unwrap())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_comp_queue, bench_matching_engine, bench_packet_pool, bench_post_path, bench_wire_header
}
criterion_main!(benches);
