//! Sparse size-adaptive `alltoallv` vs the padded dense `alltoall`
//! baseline and the `coll_naive` store-and-forward ablation — the MoE
//! token-routing exchange shape (skewed, ragged, mostly-sparse routing
//! matrices) that motivated the vector collective.
//!
//! The routing matrix is a token model: every rank routes `TOKENS`
//! fixed-size tokens to destination "experts" drawn from a Zipf
//! distribution over ranks (`skew` = the Zipf exponent; 0.0 is the
//! dense uniform control). Skewed settings also model top-k batch
//! sparsity: each source activates only `n/2` Zipf-drawn experts, so
//! the cold pairs are exactly zero bytes — the shape where a dense
//! exchange pays for blocks that do not exist. Three algorithms run the
//! *same* matrix:
//!
//! * `sparse`   — [`lcw::World::alltoallv`]: zero pairs post nothing,
//!   per-block inline/eager/chunked protocol, largest-block-first
//!   scheduling under the in-flight window.
//! * `padded`   — the pre-existing dense [`alltoall_bytes`] with every
//!   block padded to the global max block (what callers did before the
//!   vector exchange existed).
//! * `naive`    — the `coll_naive` store-and-forward `alltoallv`
//!   (dense, whole-block clones, one send in flight).
//!
//! Goodput charges every algorithm the **true** payload bytes (the
//! matrix sum), so padded's padding is pure overhead and the
//! sparse/padded ratio equals the wall-time ratio. `p99_us` is the 99th
//! percentile single-exchange latency on rank 0. `skipped` sums the
//! `coll_skipped_pairs` deltas across ranks (sparse-path evidence);
//! `hwm_KiB` is the max per-call payload high-water mark
//! (`coll_v_bytes_hwm`).
//!
//! Transports: thread-per-rank sim-ibv/sim-ofi, plus real multi-process
//! shm and tcp via self-re-execution (`LCI_TRANSPORT` pins one wire,
//! like `shm_scale`).
//!
//! Env knobs: `BENCH_QUICK=1`, `BENCH_A2AV_RANKS`, `BENCH_A2AV_SKEWS`
//! (tenths, e.g. `0,12,20`), `BENCH_A2AV_TOKENS`, `BENCH_A2AV_TOKBYTES`,
//! `BENCH_A2AV_ITERS`, `BENCH_A2AV_CHUNK`.
//!
//! Honest caveat (also in EXPERIMENTS.md): on one host all "wires" are
//! memcpy or loopback, so the sparse win shows up as bytes *not
//! copied*, not as network bandwidth saved; absolute MiB/s says nothing
//! about a cluster.

use bench::env_usize;
use lcw::{BackendKind, Platform, ResourceMode, World, WorldConfig};
use std::ffi::OsString;
use std::sync::Arc;
use std::time::{Duration, Instant};

const JOB_ENV: &str = "BENCH_A2AV_JOB";
const JOB_TIMEOUT: Duration = Duration::from_secs(300);

fn main() {
    match World::from_env(child_cfg()).expect("attach") {
        Some(world) => child(world),
        None => parent(),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    Sparse,
    Padded,
    Naive,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::Sparse => "sparse",
            Algo::Padded => "padded",
            Algo::Naive => "naive",
        }
    }
    fn parse(s: &str) -> Algo {
        match s {
            "sparse" => Algo::Sparse,
            "padded" => Algo::Padded,
            "naive" => Algo::Naive,
            other => panic!("unknown alltoallv algo {other:?}"),
        }
    }
}

fn ranks() -> Vec<usize> {
    if let Ok(v) = std::env::var("BENCH_A2AV_RANKS") {
        return v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
    }
    if bench::quick() {
        vec![4]
    } else {
        vec![4, 8]
    }
}

/// Zipf exponents in tenths (integers survive the env round-trip).
fn skews_x10() -> Vec<usize> {
    if let Ok(v) = std::env::var("BENCH_A2AV_SKEWS") {
        return v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
    }
    if bench::quick() {
        vec![0, 20]
    } else {
        vec![0, 12, 20]
    }
}

fn tokens() -> usize {
    env_usize("BENCH_A2AV_TOKENS", if bench::quick() { 256 } else { 1024 })
}

fn token_bytes() -> usize {
    env_usize("BENCH_A2AV_TOKBYTES", if bench::quick() { 256 } else { 512 })
}

fn iters() -> usize {
    env_usize("BENCH_A2AV_ITERS", if bench::quick() { 10 } else { 40 })
}

fn chunk() -> usize {
    env_usize("BENCH_A2AV_CHUNK", 32 << 10)
}

fn cfg(platform: Platform, naive: bool) -> WorldConfig {
    WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Shared)
        .with_coll_chunk_size(chunk())
        .with_coll_naive(naive)
}

fn child_cfg() -> WorldConfig {
    let naive = std::env::var(JOB_ENV).is_ok_and(|j| j.ends_with("naive"));
    cfg(Platform::ShmHost, naive)
}

/// The wire axis (mirrors `shm_scale`): both real transports unless
/// `LCI_TRANSPORT` pins one.
fn wire_sweep() -> Vec<&'static str> {
    match std::env::var(lci_fabric::bootstrap::ENV_TRANSPORT).ok().as_deref() {
        Some("tcp") => vec!["tcp"],
        Some(_) => vec!["shm"],
        None => vec!["shm", "tcp"],
    }
}

fn my_wire() -> &'static str {
    match std::env::var(lci_fabric::bootstrap::ENV_TRANSPORT).ok().as_deref() {
        Some("tcp") => "tcp",
        _ => "shm",
    }
}

/// One draw from the per-src LCG stream, as a uniform in [0, 1).
fn lcg_uniform(x: &mut u64) -> f64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*x >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic Zipf token routing with top-k batch sparsity: rank
/// `src` first activates `k = n/2` experts drawn (without replacement)
/// from weights `(e+1)^-s` over expert (rank) index `e` — real MoE
/// gating activates a handful of experts per batch, so a source's row
/// touches only its active set and every other pair is *exactly* zero.
/// Its `tokens` tokens are then Zipf-split across the active set. The
/// global expert order is shared, so high skew makes expert 0 the hot
/// rank (everyone's active set includes it) while cold pairs vanish.
/// Skew 0.0 is the dense uniform control: all experts active, no zero
/// pairs, nothing for the sparse path to skip. Every rank computes the
/// identical matrix.
fn routing_matrix(n: usize, skew_x10: usize) -> Vec<Vec<usize>> {
    let s = skew_x10 as f64 / 10.0;
    let weights: Vec<f64> = (0..n).map(|e| 1.0 / ((e + 1) as f64).powf(s)).collect();
    let tb = token_bytes();
    let mut m = vec![vec![0usize; n]; n];
    for (src, row) in m.iter_mut().enumerate() {
        // Per-src LCG stream (deterministic; rand shim is minimal).
        let mut x: u64 = (src as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let active: Vec<usize> = if skew_x10 == 0 {
            (0..n).collect()
        } else {
            let k = (n / 2).max(2).min(n);
            let mut pool: Vec<usize> = (0..n).collect();
            let mut set = Vec::with_capacity(k);
            for _ in 0..k {
                let total: f64 = pool.iter().map(|&e| weights[e]).sum();
                let mut u = lcg_uniform(&mut x) * total;
                let mut pick = pool.len() - 1;
                for (i, &e) in pool.iter().enumerate() {
                    if u < weights[e] {
                        pick = i;
                        break;
                    }
                    u -= weights[e];
                }
                set.push(pool.swap_remove(pick));
            }
            set
        };
        let total: f64 = active.iter().map(|&e| weights[e]).sum();
        for _ in 0..tokens() {
            let mut u = lcg_uniform(&mut x) * total;
            let mut dst = *active.last().expect("active set nonempty");
            for &e in &active {
                if u < weights[e] {
                    dst = e;
                    break;
                }
                u -= weights[e];
            }
            row[dst] += tb;
        }
    }
    m
}

/// One rank's timed loop. Returns (total ns, p99 ns, skipped-pairs
/// delta, v-bytes high-water) for this rank.
fn bench_loop(world: &World, algo: Algo, m: &[Vec<usize>], iters: usize) -> (u64, u64, u64, u64) {
    let rt = world.lci_runtime().expect("lci backend");
    let n = world.size();
    let rank = world.rank();
    let send_counts = m[rank].clone();
    let recv_counts: Vec<usize> = (0..n).map(|src| m[src][rank]).collect();
    let max_block = m.iter().flat_map(|row| row.iter().copied()).max().unwrap_or(0);

    // Buffers are built once and reused: the loop measures the
    // exchange, not allocation (the sparse warm loop allocates nothing
    // anyway — enforced by the lci alloc audit).
    let send = vec![0x5Au8; send_counts.iter().sum()];
    let mut recv = vec![0u8; recv_counts.iter().sum()];
    let padded_send = vec![0x5Au8; n * max_block];
    let mut padded_recv = vec![0u8; n * max_block];
    let mut lat = vec![0u64; iters];

    let once = |recv: &mut [u8], padded_recv: &mut [u8]| match algo {
        Algo::Sparse | Algo::Naive => {
            world.alltoallv(&send, &send_counts, recv, &recv_counts).expect("alltoallv")
        }
        Algo::Padded => world.alltoall_bytes(&padded_send, padded_recv).expect("padded alltoall"),
    };

    world.fabric().oob_barrier();
    once(&mut recv, &mut padded_recv); // warm pools, shelves, match tables
    world.barrier().expect("warmup barrier");
    let before = rt.device().stats();
    let t0 = Instant::now();
    for slot in lat.iter_mut() {
        let it0 = Instant::now();
        once(&mut recv, &mut padded_recv);
        *slot = it0.elapsed().as_nanos() as u64;
    }
    world.barrier().expect("closing barrier");
    let ns = t0.elapsed().as_nanos() as u64;
    let stats = rt.device().stats().since(&before);
    lat.sort_unstable();
    let p99 = lat[(lat.len() * 99).div_ceil(100).saturating_sub(1)];
    (ns, p99, stats.coll_skipped_pairs, stats.coll_v_bytes_hwm)
}

/// Aggregates rank results into the printed row: goodput charges the
/// true matrix bytes regardless of algorithm, p99 is rank 0's.
fn print_result(
    tname: &str,
    nranks: usize,
    skew_x10: usize,
    algo: Algo,
    m: &[Vec<usize>],
    results: &[(u64, u64, u64, u64)],
    iters: usize,
) {
    let true_bytes: usize = m.iter().map(|row| row.iter().sum::<usize>()).sum();
    let ns = results[0].0;
    let p99_us = results[0].1 as f64 / 1e3;
    let skipped: u64 = results.iter().map(|r| r.2).sum();
    let hwm = results.iter().map(|r| r.3).max().unwrap_or(0);
    let mibs = (true_bytes * iters) as f64 / (ns as f64 / 1e9) / (1 << 20) as f64;
    bench::print_row(&[
        tname.to_string(),
        nranks.to_string(),
        format!("{:.1}", skew_x10 as f64 / 10.0),
        algo.name().to_string(),
        format!("{mibs:.1}"),
        format!("{p99_us:.1}"),
        skipped.to_string(),
        (hwm >> 10).to_string(),
    ]);
}

/// Thread-per-rank over an in-process sim transport.
fn run_threaded(platform: Platform, nranks: usize, skew_x10: usize, algo: Algo) {
    let iters = iters();
    let m = Arc::new(routing_matrix(nranks, skew_x10));
    let fabric = lci_fabric::Fabric::new(nranks);
    let handles: Vec<_> = (0..nranks)
        .map(|r| {
            let fabric = fabric.clone();
            let wcfg = cfg(platform, algo == Algo::Naive);
            let m = m.clone();
            std::thread::Builder::new()
                .name(format!("a2av-r{r}"))
                .spawn(move || {
                    let world = World::new(fabric, r, wcfg);
                    bench_loop(&world, algo, &m, iters)
                })
                .expect("spawn rank")
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let tname = if platform == Platform::Expanse { "sim-ibv" } else { "sim-ofi" };
    print_result(tname, nranks, skew_x10, algo, &m, &results, iters);
}

/// Real multi-process run: re-executes this binary as the worker ranks.
fn run_wire(nranks: usize, skew_x10: usize, algo: Algo) {
    std::env::set_var(JOB_ENV, format!("{skew_x10}:{}", algo.name()));
    let args: Vec<OsString> = Vec::new();
    let report = World::spawn_local(nranks, &args, JOB_TIMEOUT).expect("spawn wire ranks");
    assert!(
        report.all_ok(),
        "alltoallv {} skew {skew_x10} at {nranks} procs: exits {:?}",
        algo.name(),
        report.exit_codes
    );
    std::env::remove_var(JOB_ENV);
}

fn parent() {
    println!("# alltoallv: sparse size-adaptive vector exchange vs padded dense / coll_naive");
    println!(
        "# token model: {} tokens x {} B per rank, Zipf(skew) gates; skewed rows \
         activate n/2 experts per src (top-k batch sparsity); \
         goodput charges true matrix bytes for every algo; x{} iters",
        tokens(),
        token_bytes(),
        iters()
    );
    bench::print_header(
        "alltoallv",
        &["transport", "ranks", "skew", "algo", "MiB/s", "p99_us", "skipped", "hwm_KiB"],
    );
    let wires = wire_sweep();
    for nranks in ranks() {
        for &skew in &skews_x10() {
            for algo in [Algo::Sparse, Algo::Padded, Algo::Naive] {
                for platform in [Platform::Expanse, Platform::Delta] {
                    run_threaded(platform, nranks, skew, algo);
                }
            }
            for &wire in &wires {
                std::env::set_var(lci_fabric::bootstrap::ENV_TRANSPORT, wire);
                for algo in [Algo::Sparse, Algo::Padded, Algo::Naive] {
                    run_wire(nranks, skew, algo);
                }
            }
        }
    }
}

/// Worker-rank side of a wire job: run the loop, allgather the per-rank
/// metrics over the OOB channel, rank 0 prints the row.
fn child(world: World) {
    let job = std::env::var(JOB_ENV).expect("child without a job");
    let (skew, algo) = job.split_once(':').expect("job format");
    let skew_x10: usize = skew.parse().expect("job skew");
    let algo = Algo::parse(algo);
    let world = Arc::new(world);
    let iters = iters();
    let m = routing_matrix(world.size(), skew_x10);
    let mine = bench_loop(&world, algo, &m, iters);
    let mut packed = Vec::with_capacity(32);
    for v in [mine.0, mine.1, mine.2, mine.3] {
        packed.extend_from_slice(&v.to_le_bytes());
    }
    let all = world.fabric().oob_allgather(world.rank(), packed);
    if world.rank() == 0 {
        let results: Vec<(u64, u64, u64, u64)> = all
            .iter()
            .map(|b| {
                let f = |i: usize| u64::from_le_bytes(b[i * 8..(i + 1) * 8].try_into().unwrap());
                (f(0), f(1), f(2), f(3))
            })
            .collect();
        print_result(my_wire(), world.size(), skew_x10, algo, &m, &results, iters);
    }
    world.fabric().oob_barrier();
}
