//! Multi-process scaling over the shared-memory transport ("sim →
//! wire"): message rate and bandwidth at 2/4/8 *real OS processes*,
//! the shm analogue of the Fig. 2 process-based sweep.
//!
//! The harness re-executes itself as the worker ranks (env rendezvous,
//! see `lci_fabric::bootstrap`). Ranks pair up as in Fig. 2: rank `i`
//! of the first half talks to rank `pairs + i`; each sender times its
//! own loop, the per-rank times are allgathered through the segment,
//! and rank 0 prints the aggregated row.
//!
//! Env knobs: `BENCH_SHM_RANKS` (comma list, default `2,4,8`),
//! `BENCH_ITERS`, `BENCH_BW_ITERS`, `BENCH_QUICK=1`.

use bench::env_usize;
use lcw::{BackendKind, Endpoint, Platform, ResourceMode, World, WorldConfig};
use std::ffi::OsString;
use std::time::{Duration, Instant};

const JOB_ENV: &str = "BENCH_SHM_JOB";
const JOB_TIMEOUT: Duration = Duration::from_secs(300);
const BW_SIZE: usize = 64 << 10;
const BW_WINDOW: usize = 8;

fn main() {
    match World::from_env(WorldConfig::new(
        BackendKind::Lci,
        Platform::ShmHost,
        ResourceMode::Shared,
    ))
    .expect("attach")
    {
        Some(world) => child(world),
        None => parent(),
    }
}

fn rank_sweep() -> Vec<usize> {
    if bench::quick() {
        return vec![2];
    }
    std::env::var("BENCH_SHM_RANKS")
        .unwrap_or_else(|_| "2,4,8".into())
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n >= 2 && n % 2 == 0)
        .collect()
}

fn parent() {
    let iters = bench::iters();
    let bw_iters = if bench::quick() { 5 } else { env_usize("BENCH_BW_ITERS", 40) };
    println!("# shm_scale: real multi-process shared-memory transport");
    println!(
        "# pairs = processes/2; msgrate: 8 B ping-pong x{iters}; \
         bandwidth: {BW_SIZE} B send-receive, window={BW_WINDOW}, x{bw_iters}"
    );
    let args: Vec<OsString> = Vec::new();
    for job in ["msgrate", "bandwidth"] {
        let metric = if job == "msgrate" { "Mmsg/s" } else { "MiB/s" };
        bench::print_header(&format!("shm_scale {job}"), &["procs", "pairs", "lib", metric]);
        for nranks in rank_sweep() {
            std::env::set_var(JOB_ENV, job); // children inherit our env
            let report = World::spawn_local(nranks, &args, JOB_TIMEOUT).expect("spawn");
            assert!(report.all_ok(), "{job} at {nranks} procs: exits {:?}", report.exit_codes);
        }
    }
    std::env::remove_var(JOB_ENV);
}

fn child(world: World) {
    let job = std::env::var(JOB_ENV).expect("child without a job");
    match job.as_str() {
        "msgrate" => msgrate(world),
        "bandwidth" => bandwidth(world),
        other => panic!("unknown shm_scale job {other:?}"),
    }
}

/// Pings cross from the first half of the ranks to the second and pong
/// straight back; the aggregate unidirectional rate is the sum of the
/// per-pair rates (same accounting as Fig. 2).
fn msgrate(world: World) {
    let iters = bench::iters();
    let pairs = world.size() / 2;
    let rank = world.rank();
    let mut ep = world.endpoint(0);
    let payload = [0u8; 8];
    world.fabric().oob_barrier();
    let t0 = Instant::now();
    if rank < pairs {
        let peer = pairs + rank;
        for _ in 0..iters {
            while !ep.send_am(peer, &payload, 0) {
                ep.progress();
            }
            recv_one(&mut ep);
        }
    } else {
        let peer = rank - pairs;
        for _ in 0..iters {
            recv_one(&mut ep);
            while !ep.send_am(peer, &payload, 0) {
                ep.progress();
            }
        }
    }
    let ns = t0.elapsed().as_nanos() as u64;
    report(&world, &mut ep, ns, |per_pair_ns| {
        let rate: f64 = per_pair_ns.iter().map(|&ns| iters as f64 / (ns as f64 / 1e9)).sum();
        format!("{:.4}", rate / 1e6)
    });
}

/// Windowed unidirectional send-receive streams per pair, 64 KiB
/// messages (the rendezvous path: every chunk spills through the
/// segment), credit-gated like the Fig. 4 workload.
fn bandwidth(world: World) {
    let iters = if bench::quick() { 5 } else { env_usize("BENCH_BW_ITERS", 40) };
    let pairs = world.size() / 2;
    let rank = world.rank();
    let mut ep = world.endpoint(0);
    world.fabric().oob_barrier();
    let t0 = Instant::now();
    if rank < pairs {
        let peer = pairs + rank;
        let payload = vec![0x6Bu8; BW_SIZE];
        for _ in 0..iters {
            for w in 0..BW_WINDOW {
                while !ep.send(peer, &payload, w as u32) {
                    ep.progress();
                }
            }
            let tok = ep.post_recv(peer, 0xF000, 8);
            while ep.test_recv(&tok).is_none() {
                ep.progress();
                std::thread::yield_now();
            }
        }
    } else {
        let peer = rank - pairs;
        for _ in 0..iters {
            let toks: Vec<_> =
                (0..BW_WINDOW).map(|w| ep.post_recv(peer, w as u32, BW_SIZE)).collect();
            for tok in &toks {
                while ep.test_recv(tok).is_none() {
                    ep.progress();
                    std::thread::yield_now();
                }
            }
            while !ep.send(peer, &[1u8], 0xF000) {
                ep.progress();
            }
        }
    }
    let ns = t0.elapsed().as_nanos() as u64;
    let bytes_per_pair = (iters * BW_WINDOW * BW_SIZE) as f64;
    report(&world, &mut ep, ns, |per_pair_ns| {
        let bw: f64 = per_pair_ns
            .iter()
            .map(|&ns| bytes_per_pair / (ns as f64 / 1e9) / (1024.0 * 1024.0))
            .sum();
        format!("{bw:.1}")
    });
}

fn recv_one(ep: &mut Endpoint) {
    loop {
        ep.progress();
        if ep.poll_msg().is_some() {
            return;
        }
        // Processes share cores on this box: hand the timeslice to the
        // peer instead of burning it polling an empty ring.
        std::thread::yield_now();
    }
}

/// Allgathers the per-rank elapsed times and has rank 0 print the row
/// from the *senders'* clocks; every rank then drains cleanly.
fn report(world: &World, ep: &mut Endpoint, my_ns: u64, row: impl Fn(&[u64]) -> String) {
    let all = world.fabric().oob_allgather(world.rank(), my_ns.to_le_bytes().to_vec());
    if world.rank() == 0 {
        let pairs = world.size() / 2;
        let per_pair: Vec<u64> =
            all[..pairs].iter().map(|b| u64::from_le_bytes(b[..8].try_into().unwrap())).collect();
        bench::print_row(&[
            world.size().to_string(),
            pairs.to_string(),
            "lci".to_string(),
            row(&per_pair),
        ]);
    }
    ep.quiesce(Duration::from_secs(30)).expect("drain");
    world.fabric().oob_barrier();
}
