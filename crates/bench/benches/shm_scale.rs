//! Multi-process scaling over the real transports ("sim → wire"):
//! message rate and bandwidth at 2/4/8 *real OS processes* on the shm
//! segment **and** the tcp loopback mesh — the same workload on both
//! wires, so the shm-vs-tcp rows in EXPERIMENTS.md come from one run.
//!
//! The harness re-executes itself as the worker ranks (env rendezvous,
//! see `lci_fabric::bootstrap`). Ranks pair up as in Fig. 2: rank `i`
//! of the first half talks to rank `pairs + i`; each sender times its
//! own loop, the per-rank times are allgathered through the rendezvous,
//! and rank 0 prints the aggregated row.
//!
//! The third job is the tentpole ablation: a windowed 4-process tcp
//! stream with vectored write batching on vs off (`BENCH_TCP_BATCH`),
//! reporting message rate plus the `writev` gather-fill counters —
//! batching must hold a ≥2x rate edge (checked in CI).
//!
//! Env knobs: `BENCH_SHM_RANKS` (comma list, default `2,4,8`),
//! `BENCH_ITERS`, `BENCH_BW_ITERS`, `BENCH_QUICK=1`, `LCI_TRANSPORT`
//! (pin the wire axis to `shm` or `tcp`).

use bench::env_usize;
use lcw::{BackendKind, Endpoint, Platform, ResourceMode, World, WorldConfig};
use std::ffi::OsString;
use std::time::{Duration, Instant};

const JOB_ENV: &str = "BENCH_SHM_JOB";
const JOB_TIMEOUT: Duration = Duration::from_secs(300);
const BW_SIZE: usize = 64 << 10;
const BW_WINDOW: usize = 8;

fn main() {
    let cfg = WorldConfig::new(BackendKind::Lci, Platform::ShmHost, ResourceMode::Shared)
        .with_tcp_batch(std::env::var("BENCH_TCP_BATCH").map(|v| v != "0").unwrap_or(true));
    match World::from_env(cfg).expect("attach") {
        Some(world) => child(world),
        None => parent(),
    }
}

/// The wire axis: both real transports, or just the one `LCI_TRANSPORT`
/// pins (the env var doubles as the launcher's rendezvous selector).
fn wire_sweep() -> Vec<&'static str> {
    match std::env::var(lci_fabric::bootstrap::ENV_TRANSPORT).ok().as_deref() {
        Some("tcp") => vec!["tcp"],
        Some(_) => vec!["shm"],
        None => vec!["shm", "tcp"],
    }
}

/// The wire this child landed on (the launcher exports the selector to
/// tcp children; absence means the shm segment).
fn my_wire() -> &'static str {
    match std::env::var(lci_fabric::bootstrap::ENV_TRANSPORT).ok().as_deref() {
        Some("tcp") => "tcp",
        _ => "shm",
    }
}

fn rank_sweep() -> Vec<usize> {
    if bench::quick() {
        return vec![2];
    }
    std::env::var("BENCH_SHM_RANKS")
        .unwrap_or_else(|_| "2,4,8".into())
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n >= 2 && n % 2 == 0)
        .collect()
}

fn parent() {
    let iters = bench::iters();
    let bw_iters = if bench::quick() { 5 } else { env_usize("BENCH_BW_ITERS", 40) };
    println!("# shm_scale: real multi-process shared-memory transport");
    println!(
        "# pairs = processes/2; msgrate: 8 B ping-pong x{iters}; \
         bandwidth: {BW_SIZE} B send-receive, window={BW_WINDOW}, x{bw_iters}"
    );
    let args: Vec<OsString> = Vec::new();
    let wires = wire_sweep();
    for job in ["msgrate", "bandwidth"] {
        let metric = if job == "msgrate" { "Mmsg/s" } else { "MiB/s" };
        bench::print_header(
            &format!("shm_scale {job}"),
            &["procs", "pairs", "wire", "lib", metric],
        );
        for &wire in &wires {
            for nranks in rank_sweep() {
                std::env::set_var(lci_fabric::bootstrap::ENV_TRANSPORT, wire);
                std::env::set_var(JOB_ENV, job); // children inherit our env
                let report = World::spawn_local(nranks, &args, JOB_TIMEOUT).expect("spawn");
                assert!(
                    report.all_ok(),
                    "{job} on {wire} at {nranks} procs: exits {:?}",
                    report.exit_codes
                );
            }
        }
    }
    // The writev-batching ablation: a 4-process tcp stream, batching on
    // vs off. Same workload, same wire — only the syscall shape differs.
    if wires.contains(&"tcp") {
        let stream_iters =
            if bench::quick() { 2_000 } else { env_usize("BENCH_STREAM_ITERS", 50_000) };
        println!("# tcp stream ablation: one-way 8 B stream x{stream_iters}/pair, window={STREAM_WINDOW}");
        bench::print_header(
            "shm_scale tcp_stream",
            &["procs", "pairs", "batch", "Mmsg/s", "writevs", "frames", "avg_fill"],
        );
        for batch in ["on", "off"] {
            std::env::set_var(lci_fabric::bootstrap::ENV_TRANSPORT, "tcp");
            std::env::set_var(JOB_ENV, "stream");
            std::env::set_var("BENCH_TCP_BATCH", if batch == "on" { "1" } else { "0" });
            let report = World::spawn_local(4, &args, JOB_TIMEOUT).expect("spawn");
            assert!(report.all_ok(), "stream batch={batch}: exits {:?}", report.exit_codes);
        }
        std::env::remove_var("BENCH_TCP_BATCH");
    }
    std::env::remove_var(JOB_ENV);
    std::env::remove_var(lci_fabric::bootstrap::ENV_TRANSPORT);
}

fn child(world: World) {
    let job = std::env::var(JOB_ENV).expect("child without a job");
    match job.as_str() {
        "msgrate" => msgrate(world),
        "bandwidth" => bandwidth(world),
        "stream" => stream(world),
        other => panic!("unknown shm_scale job {other:?}"),
    }
}

/// Pings cross from the first half of the ranks to the second and pong
/// straight back; the aggregate unidirectional rate is the sum of the
/// per-pair rates (same accounting as Fig. 2).
fn msgrate(world: World) {
    let iters = bench::iters();
    let pairs = world.size() / 2;
    let rank = world.rank();
    let mut ep = world.endpoint(0);
    let payload = [0u8; 8];
    world.fabric().oob_barrier();
    let t0 = Instant::now();
    if rank < pairs {
        let peer = pairs + rank;
        for _ in 0..iters {
            while !ep.send_am(peer, &payload, 0) {
                ep.progress();
            }
            recv_one(&mut ep);
        }
    } else {
        let peer = rank - pairs;
        for _ in 0..iters {
            recv_one(&mut ep);
            while !ep.send_am(peer, &payload, 0) {
                ep.progress();
            }
        }
    }
    let ns = t0.elapsed().as_nanos() as u64;
    report(&world, &mut ep, ns, |per_pair_ns| {
        let rate: f64 = per_pair_ns.iter().map(|&ns| iters as f64 / (ns as f64 / 1e9)).sum();
        format!("{:.4}", rate / 1e6)
    });
}

/// Windowed unidirectional send-receive streams per pair, 64 KiB
/// messages (the rendezvous path: every chunk spills through the
/// segment), credit-gated like the Fig. 4 workload.
fn bandwidth(world: World) {
    let iters = if bench::quick() { 5 } else { env_usize("BENCH_BW_ITERS", 40) };
    let pairs = world.size() / 2;
    let rank = world.rank();
    let mut ep = world.endpoint(0);
    world.fabric().oob_barrier();
    let t0 = Instant::now();
    if rank < pairs {
        let peer = pairs + rank;
        let payload = vec![0x6Bu8; BW_SIZE];
        for _ in 0..iters {
            for w in 0..BW_WINDOW {
                while !ep.send(peer, &payload, w as u32) {
                    ep.progress();
                }
            }
            let tok = ep.post_recv(peer, 0xF000, 8);
            while ep.test_recv(&tok).is_none() {
                ep.progress();
                std::thread::yield_now();
            }
        }
    } else {
        let peer = rank - pairs;
        for _ in 0..iters {
            let toks: Vec<_> =
                (0..BW_WINDOW).map(|w| ep.post_recv(peer, w as u32, BW_SIZE)).collect();
            for tok in &toks {
                while ep.test_recv(tok).is_none() {
                    ep.progress();
                    std::thread::yield_now();
                }
            }
            while !ep.send(peer, &[1u8], 0xF000) {
                ep.progress();
            }
        }
    }
    let ns = t0.elapsed().as_nanos() as u64;
    let bytes_per_pair = (iters * BW_WINDOW * BW_SIZE) as f64;
    report(&world, &mut ep, ns, |per_pair_ns| {
        let bw: f64 = per_pair_ns
            .iter()
            .map(|&ns| bytes_per_pair / (ns as f64 / 1e9) / (1024.0 * 1024.0))
            .sum();
        format!("{bw:.1}")
    });
}

const STREAM_WINDOW: usize = 256;

/// One-way windowed small-message stream (the syscall-amortization
/// workload): senders burst `STREAM_WINDOW` messages — so frames pile
/// up in the per-peer send queue between progress calls — then wait for
/// one credit ack. Reports the aggregate rate plus this rank's `writev`
/// counters; run twice (batch on/off) it is the tentpole ablation.
fn stream(world: World) {
    let iters = if bench::quick() { 2_000 } else { env_usize("BENCH_STREAM_ITERS", 50_000) };
    let pairs = world.size() / 2;
    let rank = world.rank();
    let mut ep = world.endpoint(0);
    let payload = [0u8; 8];
    world.fabric().oob_barrier();
    let t0 = Instant::now();
    if rank < pairs {
        let peer = pairs + rank;
        let mut sent = 0usize;
        while sent < iters {
            let burst = STREAM_WINDOW.min(iters - sent);
            for _ in 0..burst {
                while !ep.send_am(peer, &payload, 3) {
                    ep.progress();
                }
            }
            sent += burst;
            recv_one(&mut ep); // credit ack
        }
    } else {
        let peer = rank - pairs;
        let mut got = 0usize;
        while got < iters {
            recv_one(&mut ep);
            got += 1;
            if got.is_multiple_of(STREAM_WINDOW) || got == iters {
                while !ep.send_am(peer, &[1], 4) {
                    ep.progress();
                }
            }
        }
    }
    let ns = t0.elapsed().as_nanos() as u64;
    // Drain (flushing any still-queued frames) *before* blocking in the
    // OOB collective: an unflushed final ack would strand the peer.
    ep.quiesce(Duration::from_secs(30)).expect("drain");
    let stats = ep.lci_device().expect("lci").stats();
    let all = world.fabric().oob_allgather(world.rank(), ns.to_le_bytes().to_vec());
    if world.rank() == 0 {
        let per_pair: Vec<u64> =
            all[..pairs].iter().map(|b| u64::from_le_bytes(b[..8].try_into().unwrap())).collect();
        let rate: f64 = per_pair.iter().map(|&ns| iters as f64 / (ns as f64 / 1e9)).sum();
        let batch = std::env::var("BENCH_TCP_BATCH").map(|v| v != "0").unwrap_or(true);
        bench::print_row(&[
            world.size().to_string(),
            pairs.to_string(),
            (if batch { "on" } else { "off" }).to_string(),
            format!("{:.4}", rate / 1e6),
            stats.tcp_writev_calls.to_string(),
            stats.tcp_writev_frames.to_string(),
            format!("{:.2}", stats.avg_writev_fill()),
        ]);
    }
    world.fabric().oob_barrier();
}

fn recv_one(ep: &mut Endpoint) {
    loop {
        ep.progress();
        if ep.poll_msg().is_some() {
            return;
        }
        // Processes share cores on this box: hand the timeslice to the
        // peer instead of burning it polling an empty ring.
        std::thread::yield_now();
    }
}

/// Allgathers the per-rank elapsed times and has rank 0 print the row
/// from the *senders'* clocks; every rank then drains cleanly.
fn report(world: &World, ep: &mut Endpoint, my_ns: u64, row: impl Fn(&[u64]) -> String) {
    // Drain before blocking in the OOB collective: over tcp the final
    // message of the timed loop may still sit in a send queue that only
    // progress calls flush, and the peer cannot finish without it.
    ep.quiesce(Duration::from_secs(30)).expect("drain");
    let all = world.fabric().oob_allgather(world.rank(), my_ns.to_le_bytes().to_vec());
    if world.rank() == 0 {
        let pairs = world.size() / 2;
        let per_pair: Vec<u64> =
            all[..pairs].iter().map(|b| u64::from_le_bytes(b[..8].try_into().unwrap())).collect();
        bench::print_row(&[
            world.size().to_string(),
            pairs.to_string(),
            my_wire().to_string(),
            "lci".to_string(),
            row(&per_pair),
        ]);
    }
    world.fabric().oob_barrier();
}
