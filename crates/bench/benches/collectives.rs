//! Chunk-pipelined collectives vs the `coll_naive` ablation.
//!
//! Sweeps message size × rank count × transport for the two
//! bandwidth-bound collectives rebuilt in this series: ring allreduce
//! (reduce-scatter + allgather, 2(n-1)/n bytes per rank) and
//! bounded-inflight pairwise alltoall. The `naive` rows re-run the same
//! shapes with [`WorldConfig::with_coll_naive`], which routes every
//! operation through the store-and-forward baselines (whole-buffer
//! clones, one send in flight, per-send completion barriers) — the
//! measured ablation the pipelined engines are judged against.
//!
//! Transports: the in-process `sim-ibv` (Expanse) and `sim-ofi`
//! (Delta) NIC models thread-per-rank, plus the real multi-process
//! shared-memory transport (`shm`) via self-re-execution (same
//! rendezvous as `shm_scale`).
//!
//! Metrics: goodput in MiB/s (application payload bytes per rank per
//! second — `size` for allreduce, `size × nranks` for alltoall) and
//! `hwm`, the `coll_chunks_inflight_hwm` device counter proving that
//! the pipeline really keeps >1 chunk outstanding (naive rows pin it
//! at ≤1 by construction).
//!
//! Env knobs: `BENCH_QUICK=1`, `BENCH_COLL_SIZES` (comma list of
//! bytes), `BENCH_COLL_RANKS` (comma list), `BENCH_COLL_ITERS`.
//!
//! Honest caveat (also in EXPERIMENTS.md): on a single host the
//! "network" is memcpy through shared memory, so the ring's byte-volume
//! advantage shows up as reduced copying and pipelining overlap, not
//! wire-level bandwidth; absolute MiB/s says nothing about a cluster.

use bench::env_usize;
use lcw::{BackendKind, Platform, ResourceMode, World, WorldConfig};
use std::ffi::OsString;
use std::sync::Arc;
use std::time::{Duration, Instant};

const JOB_ENV: &str = "BENCH_COLL_JOB";
const JOB_TIMEOUT: Duration = Duration::from_secs(300);

fn main() {
    match World::from_env(shm_cfg()).expect("attach") {
        Some(world) => child(world),
        None => parent(),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Op {
    Allreduce,
    Alltoall,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Allreduce => "allreduce",
            Op::Alltoall => "alltoall",
        }
    }
    /// Application payload bytes a rank contributes per operation.
    fn payload(self, size: usize, nranks: usize) -> usize {
        match self {
            Op::Allreduce => size,
            Op::Alltoall => size * nranks,
        }
    }
}

fn sizes() -> Vec<usize> {
    if let Ok(v) = std::env::var("BENCH_COLL_SIZES") {
        return v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
    }
    if bench::quick() {
        vec![4 << 10, 256 << 10]
    } else {
        vec![4 << 10, 64 << 10, 256 << 10, 1 << 20]
    }
}

fn ranks() -> Vec<usize> {
    if let Ok(v) = std::env::var("BENCH_COLL_RANKS") {
        return v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
    }
    if bench::quick() {
        vec![4]
    } else {
        vec![4, 8]
    }
}

fn iters_for(size: usize) -> usize {
    let base = env_usize("BENCH_COLL_ITERS", if bench::quick() { 5 } else { 30 });
    (base * (64 << 10) / size.max(64 << 10)).max(5)
}

fn cfg(platform: Platform, naive: bool) -> WorldConfig {
    WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Shared).with_coll_naive(naive)
}

fn shm_cfg() -> WorldConfig {
    cfg(Platform::ShmHost, std::env::var("BENCH_COLL_NAIVE").is_ok())
}

fn parent() {
    println!("# collectives: chunk-pipelined ring/pairwise vs coll_naive ablation");
    println!("# goodput = payload bytes per rank / wall time; hwm = coll_chunks_inflight_hwm");
    for op in [Op::Allreduce, Op::Alltoall] {
        bench::print_header(
            &format!("coll {}", op.name()),
            &["transport", "ranks", "size_B", "algo", "MiB/s", "hwm"],
        );
        for nranks in ranks() {
            for &size in &sizes() {
                for (tname, platform) in
                    [("sim-ibv", Platform::Expanse), ("sim-ofi", Platform::Delta)]
                {
                    for naive in [false, true] {
                        let (mibs, hwm) = run_threaded(platform, nranks, size, op, naive);
                        print_result(tname, nranks, size, naive, mibs, hwm);
                    }
                }
                for naive in [false, true] {
                    run_shm(nranks, size, op, naive);
                }
            }
        }
    }
}

/// Thread-per-rank over an in-process sim transport: every rank thread
/// owns a `World` on the shared fabric and loops the collective; rank 0
/// reports its own wall time (a trailing barrier closes the timing
/// region on all ranks).
fn run_threaded(platform: Platform, nranks: usize, size: usize, op: Op, naive: bool) -> (f64, u64) {
    let iters = iters_for(size);
    let fabric = lci_fabric::Fabric::new(nranks);
    let handles: Vec<_> = (0..nranks)
        .map(|r| {
            let fabric = fabric.clone();
            let wcfg = cfg(platform, naive);
            std::thread::Builder::new()
                .name(format!("coll-r{r}"))
                .spawn(move || {
                    let world = World::new(fabric, r, wcfg);
                    bench_loop(&world, size, op, iters)
                })
                .expect("spawn rank")
        })
        .collect();
    let results: Vec<(u64, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    summarize(results, size, op, nranks, iters)
}

/// One rank's timed loop; returns (elapsed ns, inflight high-water mark).
fn bench_loop(world: &World, size: usize, op: Op, iters: usize) -> (u64, u64) {
    let rt = world.lci_runtime().expect("lci backend");
    let nranks = world.size();
    world.fabric().oob_barrier();
    // Warm-up: touch the staging shelf, pools, and match tables.
    run_op(world, size, op, nranks);
    world.barrier().expect("warmup barrier");
    let before = rt.device().stats();
    let t0 = Instant::now();
    for _ in 0..iters {
        run_op(world, size, op, nranks);
    }
    world.barrier().expect("closing barrier");
    let ns = t0.elapsed().as_nanos() as u64;
    let stats = rt.device().stats().since(&before);
    (ns, stats.coll_chunks_inflight_hwm)
}

fn run_op(world: &World, size: usize, op: Op, nranks: usize) {
    match op {
        Op::Allreduce => {
            let mut buf = vec![1u8; size];
            world.allreduce(&mut buf, &lci::SumU64).expect("allreduce");
        }
        Op::Alltoall => {
            let send = vec![2u8; size * nranks];
            let mut recv = vec![0u8; size * nranks];
            world.alltoall_bytes(&send, &mut recv).expect("alltoall");
        }
    }
}

fn summarize(
    results: Vec<(u64, u64)>,
    size: usize,
    op: Op,
    nranks: usize,
    iters: usize,
) -> (f64, u64) {
    let ns = results[0].0;
    let hwm = results.iter().map(|r| r.1).max().unwrap_or(0);
    let bytes = (op.payload(size, nranks) * iters) as f64;
    (bytes / (ns as f64 / 1e9) / (1 << 20) as f64, hwm)
}

fn print_result(tname: &str, nranks: usize, size: usize, naive: bool, mibs: f64, hwm: u64) {
    bench::print_row(&[
        tname.to_string(),
        nranks.to_string(),
        size.to_string(),
        if naive { "naive" } else { "pipelined" }.to_string(),
        format!("{mibs:.1}"),
        hwm.to_string(),
    ]);
}

/// Real multi-process run over the shm transport: re-executes this
/// binary as the worker ranks (parameters ride the environment, which
/// the children inherit).
fn run_shm(nranks: usize, size: usize, op: Op, naive: bool) {
    std::env::set_var(JOB_ENV, format!("{}:{size}", op.name()));
    if naive {
        std::env::set_var("BENCH_COLL_NAIVE", "1");
    } else {
        std::env::remove_var("BENCH_COLL_NAIVE");
    }
    let args: Vec<OsString> = Vec::new();
    let report = World::spawn_local(nranks, &args, JOB_TIMEOUT).expect("spawn shm ranks");
    assert!(
        report.all_ok(),
        "shm {} size {size} naive={naive}: exits {:?}",
        op.name(),
        report.exit_codes
    );
    std::env::remove_var(JOB_ENV);
    std::env::remove_var("BENCH_COLL_NAIVE");
}

/// Worker-rank side of the shm job: run the loop and let rank 0 print
/// the row (the parent's stdout is inherited).
fn child(world: World) {
    let job = std::env::var(JOB_ENV).expect("child without a job");
    let (opname, size) = job.split_once(':').expect("job format");
    let op = match opname {
        "allreduce" => Op::Allreduce,
        "alltoall" => Op::Alltoall,
        other => panic!("unknown coll job {other:?}"),
    };
    let size: usize = size.parse().expect("job size");
    let naive = std::env::var("BENCH_COLL_NAIVE").is_ok();
    let world = Arc::new(world);
    let iters = iters_for(size);
    let (ns, my_hwm) = bench_loop(&world, size, op, iters);
    // Collect the high-water mark over ranks through the OOB channel.
    let all = world.fabric().oob_allgather(world.rank(), my_hwm.to_le_bytes().to_vec());
    if world.rank() == 0 {
        let hwm =
            all.iter().map(|b| u64::from_le_bytes(b[..8].try_into().unwrap())).max().unwrap_or(0);
        let bytes = (op.payload(size, world.size()) * iters) as f64;
        let mibs = bytes / (ns as f64 / 1e9) / (1 << 20) as f64;
        print_result("shm", world.size(), size, naive, mibs, hwm);
    }
    world.fabric().oob_barrier();
}
