//! Paper Figure 5: maximum throughput of individual LCI resources over
//! thread counts.
//!
//! Threads hammer one shared instance of each resource with the method
//! pairs used on the communication critical path:
//!
//! * completion queue — push/pop pairs (paper: ~18 Mops at 128 threads,
//!   bounded by fetch-and-add on the shared counters);
//! * matching engine — insert pairs (a send insert matched by a recv
//!   insert; paper: ~260 Mops);
//! * packet pool — get/put pairs (thread-local deques; paper: ~800
//!   Mops, the best scaler).
//!
//! The paper's conclusion to reproduce: packet pool ≻ matching engine ≻
//! completion queue, with the CQ the only resource worth replicating
//! per thread.
//!
//! A closing section exercises the large-message pipeline (DESIGN.md
//! §4.6) on both simulated backends and reports its counters: chunk
//! posts, the in-flight high-water mark, scratch-ring reuse, and the
//! registration-cache hit/miss/eviction totals.

use bench::{env_usize, print_header, print_row, quick, thread_sweep};
use lci::{
    Comp, CompDesc, CompQueue, CqConfig, CqImpl, MatchKind, MatchingEngine, PacketPool,
    PacketPoolConfig, PostResult, Runtime, RuntimeConfig,
};
use lci_fabric::Fabric;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Runs `per_thread` op-pairs on every thread; returns Mops (op pairs/s).
fn measure(nthreads: usize, per_thread: usize, op: impl Fn(usize, usize) + Send + Sync) -> f64 {
    let op = Arc::new(op);
    let start = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..nthreads {
            let op = op.clone();
            let start = start.clone();
            scope.spawn(move || {
                while !start.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                for i in 0..per_thread {
                    op(t, i);
                }
            });
        }
        start.store(true, Ordering::Release);
    });
    let dt = t0.elapsed();
    (nthreads * per_thread) as f64 / dt.as_secs_f64() / 1e6
}

fn main() {
    let per = if quick() { 10_000 } else { env_usize("BENCH_RESOURCE_OPS", 100_000) };
    let sweep = thread_sweep();
    println!("# Fig 5: individual resource throughput (shared instance)");
    println!(
        "# paper: 100k op-pairs/thread, 1-128 threads; here: {per} op-pairs, {sweep:?} threads"
    );

    print_header("Fig5 resource throughput", &["threads", "resource", "Mops"]);
    for &t in &sweep {
        // Completion queue (FAA-array impl, the paper's default).
        let cq = CompQueue::new(CqConfig { imp: CqImpl::FaaArray, capacity: 8192 });
        let mops = measure(t, per, |_, _| {
            cq.push(CompDesc::empty());
            while cq.pop().is_none() {
                std::hint::spin_loop();
            }
        });
        print_row(&[t.to_string(), "comp_queue".into(), format!("{mops:.2}")]);

        // Matching engine: alternating send/recv inserts with per-thread
        // keys (the common no-contention case the hashtable optimizes).
        let me: MatchingEngine<u64> = MatchingEngine::new();
        let mops = measure(t, per, |tid, i| {
            let key = ((tid as u64) << 32) | (i as u64 & 1023);
            if me.insert(key, i as u64, MatchKind::Send).is_none() {
                let _ = me.insert(key, i as u64, MatchKind::Recv);
            }
        });
        print_row(&[t.to_string(), "matching_engine".into(), format!("{mops:.2}")]);

        // Packet pool: get/put pairs (tail locality).
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 64, count: t * 64 }).unwrap();
        let mops = measure(t, per, |_, _| {
            if let Some(p) = pool.get() {
                drop(p);
            }
        });
        print_row(&[t.to_string(), "packet_pool".into(), format!("{mops:.2}")]);

        // Doorbell: ring/observe pairs on one shared bell (the progress
        // engine's wakeup path, DESIGN.md §4.8). Rings with no waiter
        // are the common case — an uncontended fetch-add plus a fence.
        let bell = Arc::new(lci_fabric::sync::Doorbell::new());
        let mops = measure(t, per, |_, _| {
            bell.ring();
            let _ = bell.epoch();
        });
        print_row(&[t.to_string(), "doorbell".into(), format!("{mops:.2}")]);
    }

    // Large-message pipeline counters: stream rendezvous transfers
    // (contiguous and gathered iovec) and report what the pipeline and
    // the registration cache did.
    print_header(
        "Rendezvous pipeline counters (sender | receiver)",
        &[
            "backend",
            "transfers",
            "chunks",
            "inflight_hwm",
            "scratch_reuse",
            "rdv_retried",
            "reg_hits",
            "reg_miss",
            "reg_evict",
            "hit_rate",
        ],
    );
    let transfers = if quick() { 16 } else { 64 };
    for (name, cfg) in
        [("ibv-sim", RuntimeConfig::ibv as fn() -> RuntimeConfig), ("ofi-sim", RuntimeConfig::ofi)]
    {
        let (s, r) = rendezvous_counters(cfg, transfers);
        print_row(&[
            name.into(),
            transfers.to_string(),
            s.rdv_chunks_posted.to_string(),
            s.rdv_inflight_hwm.to_string(),
            s.rdv_scratch_reuses.to_string(),
            s.rendezvous_retried.to_string(),
            r.reg_cache_hits.to_string(),
            r.reg_cache_misses.to_string(),
            r.reg_cache_evictions.to_string(),
            format!("{:.2}", r.reg_cache_hit_rate()),
        ]);
    }
}

/// Streams `transfers` 256 KiB rendezvous messages (alternating
/// contiguous and 4-segment iovec payloads) rank 0 → rank 1 with the
/// receive buffer recycled; returns (sender stats, receiver stats).
fn rendezvous_counters(
    mkcfg: fn() -> RuntimeConfig,
    transfers: usize,
) -> (lci::StatsSnapshot, lci::StatsSnapshot) {
    // 16 chunks at the default 64 KiB chunk size: more chunks than the
    // in-flight window, so the scratch ring actually cycles.
    const SIZE: usize = 1 << 20;
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let receiver = std::thread::spawn(move || {
        let rt = Runtime::new(f2, 1, mkcfg()).unwrap();
        rt.oob_barrier();
        let mut buf = vec![0u8; SIZE];
        for i in 0..transfers {
            let comp = Comp::alloc_sync(1);
            let desc = match rt.post_recv(0, buf, i as u32, comp.clone()).unwrap() {
                PostResult::Done(d) => d,
                PostResult::Posted => {
                    let sync = comp.as_sync().unwrap();
                    while !sync.test() {
                        rt.progress().unwrap();
                    }
                    sync.take().pop().unwrap()
                }
                PostResult::Retry(_) => unreachable!("recv never retries"),
            };
            buf = desc.data.into_vec();
        }
        let stats = rt.device().stats();
        rt.oob_barrier();
        stats
    });
    let rt = Runtime::new(fabric, 0, mkcfg()).unwrap();
    rt.oob_barrier();
    for i in 0..transfers {
        let comp = Comp::alloc_sync(1);
        let posted = loop {
            let res = if i % 2 == 0 {
                rt.post_send(1, vec![i as u8; SIZE], i as u32, comp.clone()).unwrap()
            } else {
                let segs: Vec<Box<[u8]>> =
                    (0..4).map(|s| vec![s as u8; SIZE / 4].into_boxed_slice()).collect();
                rt.post_send(1, segs, i as u32, comp.clone()).unwrap()
            };
            match res {
                PostResult::Done(_) => break false,
                PostResult::Posted => break true,
                PostResult::Retry(_) => {
                    rt.progress().unwrap();
                }
            }
        };
        if posted {
            comp.as_sync().unwrap().wait_with(|| {
                rt.progress().unwrap();
            });
        }
    }
    let stats = rt.device().stats();
    rt.oob_barrier();
    (stats, receiver.join().unwrap())
}
