//! Paper Figure 5: maximum throughput of individual LCI resources over
//! thread counts.
//!
//! Threads hammer one shared instance of each resource with the method
//! pairs used on the communication critical path:
//!
//! * completion queue — push/pop pairs (paper: ~18 Mops at 128 threads,
//!   bounded by fetch-and-add on the shared counters);
//! * matching engine — insert pairs (a send insert matched by a recv
//!   insert; paper: ~260 Mops);
//! * packet pool — get/put pairs (thread-local deques; paper: ~800
//!   Mops, the best scaler).
//!
//! The paper's conclusion to reproduce: packet pool ≻ matching engine ≻
//! completion queue, with the CQ the only resource worth replicating
//! per thread.

use bench::{env_usize, print_header, print_row, quick, thread_sweep};
use lci::{
    CompDesc, CompQueue, CqConfig, CqImpl, MatchKind, MatchingEngine, PacketPool, PacketPoolConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Runs `per_thread` op-pairs on every thread; returns Mops (op pairs/s).
fn measure(nthreads: usize, per_thread: usize, op: impl Fn(usize, usize) + Send + Sync) -> f64 {
    let op = Arc::new(op);
    let start = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..nthreads {
            let op = op.clone();
            let start = start.clone();
            scope.spawn(move || {
                while !start.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                for i in 0..per_thread {
                    op(t, i);
                }
            });
        }
        start.store(true, Ordering::Release);
    });
    let dt = t0.elapsed();
    (nthreads * per_thread) as f64 / dt.as_secs_f64() / 1e6
}

fn main() {
    let per = if quick() { 10_000 } else { env_usize("BENCH_RESOURCE_OPS", 100_000) };
    let sweep = thread_sweep();
    println!("# Fig 5: individual resource throughput (shared instance)");
    println!(
        "# paper: 100k op-pairs/thread, 1-128 threads; here: {per} op-pairs, {sweep:?} threads"
    );

    print_header("Fig5 resource throughput", &["threads", "resource", "Mops"]);
    for &t in &sweep {
        // Completion queue (FAA-array impl, the paper's default).
        let cq = CompQueue::new(CqConfig { imp: CqImpl::FaaArray, capacity: 8192 });
        let mops = measure(t, per, |_, _| {
            cq.push(CompDesc::empty());
            while cq.pop().is_none() {
                std::hint::spin_loop();
            }
        });
        print_row(&[t.to_string(), "comp_queue".into(), format!("{mops:.2}")]);

        // Matching engine: alternating send/recv inserts with per-thread
        // keys (the common no-contention case the hashtable optimizes).
        let me: MatchingEngine<u64> = MatchingEngine::new();
        let mops = measure(t, per, |tid, i| {
            let key = ((tid as u64) << 32) | (i as u64 & 1023);
            if me.insert(key, i as u64, MatchKind::Send).is_none() {
                let _ = me.insert(key, i as u64, MatchKind::Recv);
            }
        });
        print_row(&[t.to_string(), "matching_engine".into(), format!("{mops:.2}")]);

        // Packet pool: get/put pairs (tail locality).
        let pool = PacketPool::new(PacketPoolConfig { payload_size: 64, count: t * 64 }).unwrap();
        let mops = measure(t, per, |_, _| {
            if let Some(p) = pool.get() {
                drop(p);
            }
        });
        print_row(&[t.to_string(), "packet_pool".into(), format!("{mops:.2}")]);
    }
}
