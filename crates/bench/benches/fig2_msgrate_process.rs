//! Paper Figure 2: process-based message-rate microbenchmark.
//!
//! One process per core, one thread per process; each process ping-pongs
//! 8-byte active messages with its peer on the other "node". The paper
//! sweeps 1..128 processes/node on Expanse and Delta; this harness
//! sweeps pairs up to `BENCH_MAX_THREADS` on both simulated platforms
//! and prints the same series (lci / mpi / gasnet — aggregated
//! unidirectional Mmsg/s).

use bench::{
    iters, lib_name, msgrate_process_based, platform_name, platform_sweep, print_header, print_row,
    thread_sweep,
};
use lcw::BackendKind;

fn main() {
    let pair_sweep = thread_sweep();
    let iters = iters();
    println!("# Fig 2: process-based message rate (8 B, ping-pong)");
    println!(
        "# paper: 1-128 processes/node, 100k iters; here: {pair_sweep:?} pairs, {iters} iters"
    );
    for platform in platform_sweep() {
        print_header(&format!("Fig2 {}", platform_name(platform)), &["pairs", "lib", "Mmsg/s"]);
        for &pairs in &pair_sweep {
            for backend in [BackendKind::Lci, BackendKind::Mpi, BackendKind::Gasnet] {
                let rate = msgrate_process_based(backend, platform, pairs, iters);
                print_row(&[
                    pairs.to_string(),
                    lib_name(backend).to_string(),
                    format!("{rate:.4}"),
                ]);
            }
        }
    }
}
