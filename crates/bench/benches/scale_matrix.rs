//! Thread-per-core scale matrix: the 8→128-thread sweep (paper §5
//! scale, Fig 3/Fig 5 shape) with placement-counter evidence.
//!
//! Sweeps `BENCH_MATRIX_THREADS` (default `8,16,32,64,128`; quick mode
//! `2,4`) worker threads per rank over every transport — both simulated
//! platforms and shm — measuring message rate (8 B ping-pong) and
//! bandwidth (64 KiB windowed streams) in shared-resource mode, where
//! all workers funnel through one device and the per-core pool stripes
//! carry the contention. Each cell runs twice: `lci` with the default
//! thread-per-core placement, and `lci-nopl` with
//! [`lci::Placement::disabled`] — the core-oblivious single-stripe
//! ablation baseline.
//!
//! Counter columns (LCI stats deltas over the timed section, rank 0):
//! `local%` — owner-local buffer-pool hit rate
//! (`buf_pool_local_hits / (local_hits + steals)`); `steals` —
//! cross-core shelf steals; `contended` — matching-engine bucket-lock
//! try-lock failures; `useful%` — useful-poll rate.
//!
//! Per-thread iterations shrink as the thread axis grows
//! (`max(50, BENCH_ITERS / threads)`) so the total message count stays
//! roughly flat across the matrix.

use bench::{
    bandwidth_thread_based_stats, env_usize, iters, matrix_thread_sweep,
    msgrate_thread_based_stats, platform_name, platform_sweep, print_header, print_row,
};
use lcw::{BackendKind, Platform, ResourceMode, WorldConfig};

const BW_SIZE: usize = 64 << 10;

fn counter_cells(stats: &Option<lci::StatsSnapshot>) -> [String; 4] {
    match stats {
        Some(s) => {
            let looked = s.buf_pool_local_hits + s.buf_pool_steals;
            let local = if looked == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * s.buf_pool_local_hits as f64 / looked as f64)
            };
            [
                local,
                s.buf_pool_steals.to_string(),
                s.matching_contended.to_string(),
                format!("{:.1}", 100.0 * s.useful_poll_rate()),
            ]
        }
        None => ["-".into(), "-".into(), "-".into(), "-".into()],
    }
}

/// The two placement variants per cell. `lci` forces the core map to
/// the thread count — emulating a `t`-core node with one pinned worker
/// per core, the paper's configuration — so the per-core layout is
/// exercised for real even on a small host. `lci-nopl` is the
/// core-oblivious single-stripe ablation.
fn variants(threads: usize) -> [(&'static str, lci::Placement); 2] {
    [
        ("lci", lci::Placement::default().with_cores(threads)),
        ("lci-nopl", lci::Placement::disabled()),
    ]
}

fn matrix_platforms() -> Vec<Platform> {
    match Platform::selected() {
        Some(p) => vec![p],
        // The two sims plus the in-process real transports (shm rings,
        // tcp loopback sockets); the multi-process matrix lives in
        // `shm_scale`.
        None => {
            let mut v = platform_sweep();
            v.push(Platform::ShmHost);
            v.push(Platform::TcpHost);
            v
        }
    }
}

fn main() {
    let sweep = matrix_thread_sweep();
    let base_iters = iters();
    let ncores = lci::topology::ncores();
    println!("# Scale matrix: thread sweep with thread-per-core placement counters");
    println!("# paper: up to 128 threads on 128-core nodes; here: {sweep:?} threads");
    println!(
        "# host: {ncores} core(s); runs above {ncores} threads are oversubscribed \
         (threads timeslice, rates are not hardware-parallel)"
    );
    println!("# per-thread iters: max(50, {base_iters}/threads); bw window 8 x {BW_SIZE} B");

    let cols = ["threads", "lib", "Mmsg/s", "local%", "steals", "contended", "useful%"];
    let bw_cols = ["threads", "lib", "MiB/s", "local%", "steals", "contended", "useful%"];

    for platform in matrix_platforms() {
        // 8 B inject-path message rate (the Fig 3 workload at matrix
        // scale). Inline payloads skip the buffer pool, so the pool
        // columns stay dark here; the eager section lights them up.
        print_header(&format!("Matrix msgrate {}", platform_name(platform)), &cols);
        for &t in &sweep {
            let it = (base_iters / t).max(env_usize("BENCH_MATRIX_MIN_ITERS", 50));
            for (label, placement) in variants(t) {
                let cfg = WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Shared)
                    .with_placement(placement);
                let (rate, stats) = msgrate_thread_based_stats(cfg, t, it, 8);
                let c = counter_cells(&stats);
                print_row(&[
                    t.to_string(),
                    label.to_string(),
                    format!("{rate:.4}"),
                    c[0].clone(),
                    c[1].clone(),
                    c[2].clone(),
                    c[3].clone(),
                ]);
            }
        }

        // 512 B eager-path message rate: every message stages through
        // the per-core buffer-pool shelves, so this section carries the
        // owner-local hit-rate evidence. Progress is driven by one
        // core-pinned dedicated engine: worker-polled ("Workers")
        // progress has no stable owner for inbound staging — any worker
        // may poll, so per-core shelves cannot beat ~1/cores for that
        // traffic — while the pinned engine keeps every inbound take on
        // its own stripe (the placement story under test).
        print_header(
            &format!("Matrix msgrate-eager 512B dedicated-engine {}", platform_name(platform)),
            &cols,
        );
        for &t in &sweep {
            let it = (base_iters / t).max(env_usize("BENCH_MATRIX_MIN_ITERS", 50));
            for (label, placement) in variants(t) {
                let cfg = WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Shared)
                    .with_placement(placement)
                    .with_progress_mode(lci::ProgressMode::Dedicated(1));
                let (rate, stats) = msgrate_thread_based_stats(cfg, t, it, 512);
                let c = counter_cells(&stats);
                print_row(&[
                    t.to_string(),
                    label.to_string(),
                    format!("{rate:.4}"),
                    c[0].clone(),
                    c[1].clone(),
                    c[2].clone(),
                    c[3].clone(),
                ]);
            }
        }

        print_header(&format!("Matrix bandwidth {}", platform_name(platform)), &bw_cols);
        for &t in &sweep {
            let it = (base_iters / (t * 8)).max(env_usize("BENCH_MATRIX_MIN_ITERS", 50) / 8).max(4);
            for (label, placement) in variants(t) {
                let cfg = WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Shared)
                    .with_placement(placement);
                let (bw, stats) = bandwidth_thread_based_stats(cfg, t, BW_SIZE, it);
                let c = counter_cells(&stats);
                print_row(&[
                    t.to_string(),
                    label.to_string(),
                    format!("{bw:.1}"),
                    c[0].clone(),
                    c[1].clone(),
                    c[2].clone(),
                    c[3].clone(),
                ]);
            }
        }
    }
}
