//! Paper Figure 4: thread-based bandwidth microbenchmark.
//!
//! Fixed thread count (paper: 64 to stay on one socket; here
//! `BENCH_MAX_THREADS`), message size swept 16 B → 1 MiB, send-receive
//! streams, unidirectional MiB/s. Four panels: dedicated vs shared ×
//! Expanse vs Delta. GASNet is absent (no send-receive support in its
//! LCW backend, as in the paper).

use bench::{
    bandwidth_thread_based, env_usize, lib_name, platform_name, platform_sweep, print_header,
    print_row, quick,
};
use lcw::{BackendKind, ResourceMode};

fn main() {
    let nthreads = env_usize("BENCH_MAX_THREADS", 4).max(1);
    let sizes: Vec<usize> =
        if quick() { vec![16, 4096] } else { vec![16, 256, 4096, 65536, 262144, 1 << 20] };
    let base_iters = if quick() { 5 } else { env_usize("BENCH_BW_ITERS", 40) };
    println!("# Fig 4: thread-based bandwidth (send-receive, window=8)");
    println!("# paper: 64 threads, 16B-1MiB; here: {nthreads} threads, sizes {sizes:?}");

    for platform in platform_sweep() {
        for (mode_name, mode) in
            [("dedicated", ResourceMode::Dedicated(nthreads)), ("shared", ResourceMode::Shared)]
        {
            print_header(
                &format!("Fig4 {mode_name} {}", platform_name(platform)),
                &["size_B", "lib", "MiB/s"],
            );
            for &size in &sizes {
                // Fewer iterations for big messages, like the paper's
                // 1k — but keep a floor of 10 windows: below that the
                // run is dominated by cold-start costs (first-touch
                // registration, pool warm-up) and the variance swamps
                // the measurement.
                let iters = (base_iters * 4096 / size.max(4096)).max(10);
                let libs: &[BackendKind] = if mode_name == "dedicated" {
                    &[BackendKind::Lci, BackendKind::Vci]
                } else {
                    &[BackendKind::Lci, BackendKind::Mpi]
                };
                for &backend in libs {
                    let bw = bandwidth_thread_based(backend, platform, mode, nthreads, size, iters);
                    print_row(&[
                        size.to_string(),
                        lib_name(backend).to_string(),
                        format!("{bw:.1}"),
                    ]);
                }
            }
        }
    }
}
