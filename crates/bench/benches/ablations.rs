//! Ablations of the design choices DESIGN.md calls out (paper §4):
//!
//! 1. **Trylock wrapper vs blocking locks** (§4.2.2) — multithreaded
//!    message rate with the wrapper on vs off;
//! 2. **ibv thread-domain strategy** (§4.2.3) — per_qp / all_qp / none;
//! 3. **Completion-queue implementation** (§4.1.4) — FAA fixed array vs
//!    LCRQ-class segmented queue, multithreaded push/pop throughput;
//! 4. **Matching-engine bucket count** (§4.1.3) — load factor vs insert
//!    throughput (the small-array fast path needs low load);
//! 5. **Aggregation buffer size** (§5.3) — the paper notes larger
//!    buffers narrow the LCI/GASNet gap but worsen load balance;
//! 6. **Sender-side coalescing** (§4.2.4 lock amortization) — one-way
//!    streaming message rate with coalescing off vs a threshold sweep,
//!    on both simulated backends;
//! 7. **Zero-copy receive demux** — coalesced streaming with refcounted
//!    view delivery vs the copying ablation path, with receiver stats
//!    proving which path ran (zero-copy deliveries, batched-replenish
//!    fill);
//! 8. **Large-message pipeline** (§4.6) — rendezvous bandwidth with
//!    chunked pipelined writes and the registration cache each toggled
//!    independently, on both simulated backends;
//! 9. **Allocation recycling** (§4.1.2 extended — DESIGN.md §4.7) —
//!    message rate and rendezvous bandwidth with the pooled op
//!    contexts / recycled buffer shelves on vs the
//!    allocate-per-operation baseline;
//! 10. **Progress engine** (DESIGN.md §4.8) — polling workers vs
//!     dedicated progress threads with doorbell parking vs the hybrid,
//!     on message rate (with poll/park/doorbell counter evidence) and
//!     rendezvous bandwidth, both simulated backends.

use bench::{
    bandwidth_thread_based_cfg, env_usize, iters, msgrate_thread_based_cfg,
    msgrate_thread_based_stats, print_header, print_row, quick, thread_sweep,
};
use kmer::{run_rank, KmerConfig, ReadSetConfig};
use lci::{CompDesc, CompQueue, CqConfig, CqImpl, MatchKind, MatchingConfig, MatchingEngine};
use lci_fabric::sync::LockDiscipline;
use lci_fabric::{Fabric, TdStrategy};
use lcw::{BackendKind, Platform, ResourceMode, WorldConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let iters = iters();
    let threads = *thread_sweep().last().unwrap_or(&2);

    // ------------------------------------------------------------------
    // 1+2. Lock discipline and thread-domain strategy: message rate with
    // a custom LCI runtime per variant (shared device: the contended
    // case the wrapper exists for).
    // ------------------------------------------------------------------
    print_header(
        "Ablation: trylock wrapper & td strategy (shared device msgrate)",
        &["variant", "threads", "Mmsg/s"],
    );
    for (name, discipline, td) in [
        ("trylock+per_qp (LCI default)", LockDiscipline::TryLock, TdStrategy::PerQp),
        ("trylock+all_qp", LockDiscipline::TryLock, TdStrategy::AllQp),
        ("blocking (stock stack)", LockDiscipline::Blocking, TdStrategy::None),
    ] {
        let rate = msgrate_lci_variant(discipline, td, threads, iters);
        print_row(&[name.into(), threads.to_string(), format!("{rate:.4}")]);
    }

    // ------------------------------------------------------------------
    // 3. Completion-queue implementations.
    // ------------------------------------------------------------------
    let per = if quick() { 20_000 } else { env_usize("BENCH_RESOURCE_OPS", 100_000) };
    print_header("Ablation: completion queue impls (push/pop pairs)", &["impl", "threads", "Mops"]);
    for t in thread_sweep() {
        for (name, imp) in [
            ("faa_array", CqImpl::FaaArray),
            ("lcrq", CqImpl::Lcrq),
            ("segmented(yardstick)", CqImpl::Segmented),
        ] {
            let q = CompQueue::new(CqConfig { imp, capacity: 8192 });
            let mops = stress(t, per, |_, _| {
                q.push(CompDesc::empty());
                while q.pop().is_none() {
                    std::thread::yield_now();
                }
            });
            print_row(&[name.into(), t.to_string(), format!("{mops:.2}")]);
        }
    }

    // ------------------------------------------------------------------
    // 4. Matching-engine bucket count (load factor).
    // ------------------------------------------------------------------
    print_header(
        "Ablation: matching engine bucket count (insert pairs)",
        &["buckets", "threads", "Mops"],
    );
    for buckets in [16usize, 256, 4096] {
        let me: MatchingEngine<u64> = MatchingEngine::with_config(MatchingConfig { buckets });
        let mops = stress(threads, per, |tid, i| {
            let key = ((tid as u64) << 32) | (i as u64 & 4095);
            if me.insert(key, i as u64, MatchKind::Send).is_none() {
                let _ = me.insert(key, i as u64, MatchKind::Recv);
            }
        });
        print_row(&[buckets.to_string(), threads.to_string(), format!("{mops:.2}")]);
    }

    // ------------------------------------------------------------------
    // 5. Aggregation buffer size in the k-mer pipeline.
    // ------------------------------------------------------------------
    print_header("Ablation: k-mer aggregation buffer size", &["agg_bytes", "time_s"]);
    let scale = if quick() { 1 } else { 2 };
    let reads = ReadSetConfig {
        genome_len: 10_000 * scale,
        n_reads: 1_000 * scale,
        read_len: 100,
        error_rate: 0.01,
        seed: 42,
    };
    for agg in [1024usize, 8192, 32768] {
        let cfg = KmerConfig {
            reads,
            k: 31,
            nthreads: 2,
            agg_size: agg,
            world: WorldConfig::new(
                BackendKind::Lci,
                Platform::Expanse,
                ResourceMode::Dedicated(2),
            ),
            expected_distinct: reads.genome_len * 2,
            max_count: 64,
        };
        let fabric = Fabric::new(2);
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let fabric = fabric.clone();
                std::thread::spawn(move || run_rank(fabric, r, cfg))
            })
            .collect();
        let t = handles
            .into_iter()
            .map(|h| h.join().unwrap().count_time.as_secs_f64())
            .fold(0.0, f64::max);
        print_row(&[agg.to_string(), format!("{t:.3}")]);
    }

    // ------------------------------------------------------------------
    // 6. Sender-side coalescing. The request-reply loop of ablation 1
    // would hide coalescing entirely (every message waits for its
    // reply), so this section streams one-way: the metric is the rate at
    // which small messages cross the fabric, which is where amortizing
    // the posting lock pays off — most visibly on the ofi-like backend
    // whose single endpoint lock serializes posting against polling.
    // ------------------------------------------------------------------
    let ct = if quick() { 2 } else { threads.max(4) };
    // Streaming is far cheaper per message than the request-reply loops
    // above; use more iterations so startup and tail-flush costs are
    // amortized out of the rate.
    let citers = if quick() { iters } else { iters.saturating_mul(10) };
    print_header(
        "Ablation: sender-side coalescing (one-way streaming msgrate)",
        &["backend", "coalesce", "threads", "Mmsg/s"],
    );
    for (bname, mkdev) in [
        ("ibv-sim", lci::DeviceConfig::ibv as fn() -> lci::DeviceConfig),
        ("ofi-sim", lci::DeviceConfig::ofi as fn() -> lci::DeviceConfig),
    ] {
        for (cname, coalesce) in [
            ("off", lci::CoalesceConfig::default()),
            ("2KiB", lci::CoalesceConfig::enabled_with_bytes(2048)),
            ("8KiB", lci::CoalesceConfig::enabled_with_bytes(8192)),
            ("32KiB", lci::CoalesceConfig::enabled_with_bytes(32768)),
        ] {
            let (rate, _) = msgrate_streaming(mkdev, coalesce, true, 8, ct, citers);
            print_row(&[bname.into(), cname.into(), ct.to_string(), format!("{rate:.4}")]);
        }
    }

    // ------------------------------------------------------------------
    // 7. Zero-copy receive demux. Same streaming workload with an 8KiB
    // coalescing threshold; the zero_copy knob switches the receiver
    // between view-based delivery and the copying ablation path. The
    // stats columns prove which path ran: zc_deliv counts zero-copy
    // deliveries on the receiver, rfill is the average number of
    // receives restocked per batched SRQ refill.
    // ------------------------------------------------------------------
    print_header(
        "Ablation: zero-copy receive demux (coalesced streaming msgrate)",
        &["backend", "payload", "zero_copy", "threads", "Mmsg/s", "zc_deliv", "rfill"],
    );
    for (bname, mkdev) in [
        ("ibv-sim", lci::DeviceConfig::ibv as fn() -> lci::DeviceConfig),
        ("ofi-sim", lci::DeviceConfig::ofi as fn() -> lci::DeviceConfig),
    ] {
        for payload in [8usize, 512, 4096] {
            for zc in [false, true] {
                // Sub-messages up to 4KiB, frames up to 16KiB: the
                // larger payloads make the avoided receive-side copy a
                // dominant share of the per-message cost.
                let coalesce = lci::CoalesceConfig {
                    enabled: true,
                    max_bytes: 16384,
                    max_msgs: 64,
                    max_sub_size: 4096,
                };
                // Best of five runs: on one box the scheduler noise
                // between runs can exceed the effect size of one run.
                let (rate, stats) = (0..5)
                    .map(|_| msgrate_streaming(mkdev, coalesce, zc, payload, ct, citers))
                    .fold((0.0f64, lci::StatsSnapshot::default()), |best, cur| {
                        if cur.0 > best.0 {
                            cur
                        } else {
                            best
                        }
                    });
                print_row(&[
                    bname.into(),
                    payload.to_string(),
                    (if zc { "on" } else { "off" }).into(),
                    ct.to_string(),
                    format!("{rate:.4}"),
                    stats.zero_copy_deliveries.to_string(),
                    format!("{:.1}", stats.avg_replenish_fill()),
                ]);
            }
        }
    }

    // ------------------------------------------------------------------
    // 7b. The demux path in isolation. End-to-end streaming above runs
    // sender and receiver on the same box, so the receive-side saving is
    // diluted by every other per-message cost (and by scheduler noise);
    // this single-threaded microbench measures only what the knob
    // changes — per-sub-message copy-out vs refcounted view handout.
    // ------------------------------------------------------------------
    print_header(
        "Ablation: coalesced demux in isolation (single thread)",
        &["payload", "mode", "Mmsg/s"],
    );
    let dtotal = if quick() { 100_000 } else { 2_000_000 };
    for payload in [8usize, 512, 1024, 4096] {
        for zc in [false, true] {
            let rate = demux_microbench(payload, zc, dtotal);
            print_row(&[
                payload.to_string(),
                (if zc { "view" } else { "copy" }).into(),
                format!("{rate:.2}"),
            ]);
        }
    }

    // ------------------------------------------------------------------
    // 8. Large-message pipeline: rendezvous bandwidth with the chunked
    // pipeline and the registration cache toggled independently. Both
    // knobs off recovers the pre-pipeline path (monolithic write,
    // register/deregister per transfer).
    // ------------------------------------------------------------------
    print_header(
        "Ablation: large-message pipeline (rendezvous bandwidth)",
        &["platform", "size", "chunked", "reg_cache", "threads", "MiB/s"],
    );
    let rdv_iters = if quick() { 10 } else { env_usize("BENCH_BW_ITERS", 40) };
    let rdv_threads = if quick() { 1 } else { 2 };
    for platform in [Platform::Expanse, Platform::Delta] {
        for size in [256 * 1024usize, 1 << 20] {
            for (chunked, cache) in [(false, false), (false, true), (true, false), (true, true)] {
                let cfg = WorldConfig::new(
                    BackendKind::Lci,
                    platform,
                    ResourceMode::Dedicated(rdv_threads),
                )
                .with_rdv_chunking(chunked)
                .with_reg_cache(cache);
                let bw = bandwidth_thread_based_cfg(cfg, rdv_threads, size, rdv_iters);
                print_row(&[
                    bench::platform_name(platform).into(),
                    size.to_string(),
                    (if chunked { "on" } else { "off" }).into(),
                    (if cache { "on" } else { "off" }).into(),
                    rdv_threads.to_string(),
                    format!("{bw:.1}"),
                ]);
            }
        }
    }

    // ------------------------------------------------------------------
    // 9. Allocation recycling: the same eager and rendezvous workloads
    // with steady-state storage recycling (pooled op contexts, recycled
    // staging buffers, persistent scratch) on vs the
    // allocate-per-operation baseline. The companion correctness
    // artifact is crates/lci/tests/alloc_steady_state.rs, which proves
    // the recycling path makes zero allocator calls per operation.
    // ------------------------------------------------------------------
    print_header(
        "Ablation: allocation recycling (eager msgrate + rendezvous bandwidth)",
        &["platform", "workload", "recycling", "threads", "rate"],
    );
    let ar_threads = if quick() { 2 } else { threads.max(4) };
    for platform in [Platform::Expanse, Platform::Delta] {
        for recycle in [false, true] {
            let cfg =
                WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Dedicated(ar_threads))
                    .with_alloc_recycling(recycle);
            let rate = msgrate_thread_based_cfg(cfg, ar_threads, iters, 512);
            print_row(&[
                bench::platform_name(platform).into(),
                "eager 512B".into(),
                (if recycle { "on" } else { "off" }).into(),
                ar_threads.to_string(),
                format!("{rate:.4} Mmsg/s"),
            ]);
        }
        for recycle in [false, true] {
            let cfg =
                WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Dedicated(rdv_threads))
                    .with_alloc_recycling(recycle);
            let bw = bandwidth_thread_based_cfg(cfg, rdv_threads, 256 * 1024, rdv_iters);
            print_row(&[
                bench::platform_name(platform).into(),
                "rdv 256KiB".into(),
                (if recycle { "on" } else { "off" }).into(),
                rdv_threads.to_string(),
                format!("{bw:.1} MiB/s"),
            ]);
        }
    }

    // ------------------------------------------------------------------
    // 10. Progress engine: who polls. Workers-mode threads all hammer
    // progress (most wasted polls, especially behind the ofi-like
    // endpoint lock); a dedicated engine polls alone while workers
    // block, so nearly every poll finds work. The counter columns are
    // the evidence: useful = progress_useful/progress_calls on rank 0's
    // device, wpolls = worker-side polls, parks = engine parks, rings =
    // doorbell rings.
    // ------------------------------------------------------------------
    print_header(
        "Ablation: progress engine (thread-based msgrate, shared device)",
        &["platform", "mode", "threads", "Mmsg/s", "useful", "polls", "wpolls", "parks", "rings"],
    );
    let pm_threads: Vec<usize> = if quick() { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let pm_modes = [
        ("workers", lci::ProgressMode::Workers),
        ("dedicated(1)", lci::ProgressMode::Dedicated(1)),
        ("hybrid(1)", lci::ProgressMode::Hybrid(1)),
    ];
    for platform in [Platform::Expanse, Platform::Delta] {
        for (mname, pmode) in pm_modes {
            for &t in &pm_threads {
                let cfg = WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Shared)
                    .with_progress_mode(pmode);
                let (rate, stats) = msgrate_thread_based_stats(cfg, t, iters, 8);
                let s = stats.expect("lci stats");
                print_row(&[
                    bench::platform_name(platform).into(),
                    mname.into(),
                    t.to_string(),
                    format!("{rate:.4}"),
                    format!("{:.3}", s.useful_poll_rate()),
                    s.progress_calls.to_string(),
                    s.worker_polls.to_string(),
                    s.progress_parks.to_string(),
                    s.doorbell_rings.to_string(),
                ]);
            }
        }
    }
    print_header(
        "Ablation: progress engine (rendezvous bandwidth 256KiB)",
        &["platform", "mode", "threads", "MiB/s"],
    );
    for platform in [Platform::Expanse, Platform::Delta] {
        for (mname, pmode) in pm_modes {
            let cfg =
                WorldConfig::new(BackendKind::Lci, platform, ResourceMode::Dedicated(rdv_threads))
                    .with_progress_mode(pmode);
            let bw = bandwidth_thread_based_cfg(cfg, rdv_threads, 256 * 1024, rdv_iters);
            print_row(&[
                bench::platform_name(platform).into(),
                mname.into(),
                rdv_threads.to_string(),
                format!("{bw:.1}"),
            ]);
        }
    }
}

/// Demux-path microbenchmark: repeatedly lands one pre-packed coalesced
/// frame in a pool packet and delivers every sub-message either by
/// copying it out (the ablation path) or as a refcounted view (the
/// zero-copy path). Returns sub-messages per second in millions.
fn demux_microbench(payload: usize, zero_copy: bool, total: usize) -> f64 {
    use lci::proto::{coalesce_pack, coalesce_unpack_ranges, Header, MsgType};
    use lci::{MatchingPolicy, PacketPool, PacketPoolConfig};
    use std::hint::black_box;

    let pool = PacketPool::new(PacketPoolConfig { payload_size: 32768, count: 8 }).unwrap();
    let imm = Header::new(MsgType::EagerAm, MatchingPolicy::RankTag, 0, 0).encode();
    let mut frame = Vec::new();
    let mut n = 0usize;
    while frame.len() + 12 + payload <= 16384 {
        coalesce_pack(&mut frame, imm, &vec![0u8; payload]);
        n += 1;
    }
    let reps = total / n;

    let t0 = Instant::now();
    for _ in 0..reps {
        let mut packet = pool.get().unwrap();
        packet.fill(&frame);
        let subs = coalesce_unpack_ranges(&packet.as_slice()[..packet.len()]).unwrap();
        if zero_copy {
            let shared = packet.into_shared();
            for (sub_imm, r) in subs {
                black_box(Header::decode(sub_imm).unwrap());
                let view = shared.view(r.start, r.end - r.start);
                black_box(view.as_slice());
            }
        } else {
            for (sub_imm, r) in subs {
                black_box(Header::decode(sub_imm).unwrap());
                let owned: Box<[u8]> = packet.as_slice()[r].into();
                black_box(&owned);
            }
        }
    }
    (reps * n) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// One-way streaming message rate: `nthreads` sender threads on rank 0
/// stream `payload`-byte active messages to rank 1, which counts them
/// through a handler completion. Returns Mmsg/s as observed by the
/// receiver, plus the receiver device's stats.
fn msgrate_streaming(
    mkdev: fn() -> lci::DeviceConfig,
    coalesce: lci::CoalesceConfig,
    zero_copy: bool,
    payload: usize,
    nthreads: usize,
    iters: usize,
) -> (f64, lci::StatsSnapshot) {
    use lci::{Comp, PostResult, Runtime, RuntimeConfig};
    let fabric = Fabric::new(2);
    let elapsed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let total = (nthreads * iters) as u64;

    // Packets sized for the largest threshold in the sweep, identical
    // across variants so only the coalescing knob differs.
    let cfg = move || RuntimeConfig {
        device: mkdev(),
        packet: lci::PacketPoolConfig { payload_size: 32768, count: 256 },
        coalesce,
        zero_copy_recv: zero_copy,
        ..RuntimeConfig::small()
    };

    let recv_fabric = fabric.clone();
    let recv_elapsed = elapsed.clone();
    let recv_done = done.clone();
    let receiver = std::thread::spawn(move || {
        let rt = Runtime::new(recv_fabric.clone(), 1, cfg()).unwrap();
        let received = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let r2 = received.clone();
        let rcomp = rt.register_rcomp(Comp::alloc_handler(move |_| {
            r2.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(rcomp, 0);
        recv_fabric.oob_barrier();
        let t0 = Instant::now();
        while received.load(Ordering::Acquire) < total {
            rt.progress().unwrap();
        }
        recv_elapsed.store(t0.elapsed().as_nanos() as u64, Ordering::Release);
        recv_done.store(true, Ordering::Release);
        rt.device().stats()
    });

    let rt = Runtime::new(fabric.clone(), 0, cfg()).unwrap();
    fabric.oob_barrier();
    std::thread::scope(|scope| {
        for t in 0..nthreads {
            let rt = rt.clone();
            scope.spawn(move || {
                let noop = Comp::alloc_handler(|_| {});
                let buf = vec![0u8; payload];
                for _ in 0..iters {
                    while let PostResult::Retry(_) =
                        rt.post_am_x(1, &buf[..], noop.clone(), 0).tag(t as u32).call().unwrap()
                    {
                        let _ = rt.progress();
                    }
                }
            });
        }
    });
    // Flush the tail of every coalescing buffer, then keep the progress
    // engine turning (backlog drain, send completions) until the
    // receiver has counted everything.
    rt.device().flush_coalesced().unwrap();
    while !done.load(Ordering::Acquire) {
        rt.progress().unwrap();
    }
    let stats = receiver.join().unwrap();
    (total as f64 / (elapsed.load(Ordering::Acquire) as f64 / 1e9) / 1e6, stats)
}

/// Thread-stress helper: op-pairs per second (Mops).
fn stress(nthreads: usize, per: usize, op: impl Fn(usize, usize) + Send + Sync) -> f64 {
    let op = Arc::new(op);
    let go = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..nthreads {
            let op = op.clone();
            let go = go.clone();
            scope.spawn(move || {
                while !go.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                for i in 0..per {
                    op(t, i);
                }
            });
        }
        go.store(true, Ordering::Release);
    });
    (nthreads * per) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// Message rate with an LCI runtime whose device uses the given lock
/// discipline and thread-domain strategy, all threads sharing it.
fn msgrate_lci_variant(
    discipline: LockDiscipline,
    td: TdStrategy,
    nthreads: usize,
    iters: usize,
) -> f64 {
    use lci::{Comp, PostResult, Runtime, RuntimeConfig};
    let fabric = Fabric::new(2);
    let elapsed = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let mk = |rank: usize, fabric: Arc<Fabric>, elapsed: Arc<std::sync::atomic::AtomicU64>| {
        std::thread::spawn(move || {
            let cfg = RuntimeConfig {
                device: lci::DeviceConfig::ibv().with_discipline(discipline).with_td_strategy(td),
                ..RuntimeConfig::small()
            };
            let rt = Runtime::new(fabric.clone(), rank, cfg).unwrap();
            let cq = Comp::alloc_cq();
            let rcomp = rt.register_rcomp(cq.clone());
            assert_eq!(rcomp, 0);
            fabric.oob_barrier();
            let t0 = Instant::now();
            let total = (nthreads * iters) as u64;
            let served = Arc::new(std::sync::atomic::AtomicU64::new(0));
            std::thread::scope(|scope| {
                for t in 0..nthreads {
                    let rt = rt.clone();
                    let cq = cq.clone();
                    let served = served.clone();
                    scope.spawn(move || {
                        let noop = Comp::alloc_handler(|_| {});
                        if rank == 0 {
                            for _ in 0..iters {
                                while let PostResult::Retry(_) = rt
                                    .post_am_x(1, [0u8; 8].as_slice(), noop.clone(), 0)
                                    .tag(t as u32)
                                    .call()
                                    .unwrap()
                                {
                                    let _ = rt.progress();
                                }
                                loop {
                                    let _ = rt.progress();
                                    if cq.pop().is_some() {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        } else {
                            while served.load(Ordering::Acquire) < total {
                                let _ = rt.progress();
                                while let Some(m) = cq.pop() {
                                    while let PostResult::Retry(_) = rt
                                        .post_am_x(0, [0u8; 8].as_slice(), noop.clone(), 0)
                                        .tag(m.tag)
                                        .call()
                                        .unwrap()
                                    {
                                        let _ = rt.progress();
                                    }
                                    served.fetch_add(1, Ordering::AcqRel);
                                }
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
            let dt = t0.elapsed();
            fabric.oob_barrier();
            if rank == 0 {
                elapsed.store(dt.as_nanos() as u64, Ordering::Release);
            }
        })
    };
    let h0 = mk(0, fabric.clone(), elapsed.clone());
    let h1 = mk(1, fabric, elapsed.clone());
    h0.join().unwrap();
    h1.join().unwrap();
    (nthreads * iters) as f64 / (elapsed.load(Ordering::Acquire) as f64 / 1e9) / 1e6
}
