//! Paper Table 1: how the generic `post_comm` expresses every common
//! point-to-point paradigm by combining direction, remote buffer, and
//! remote completion — including the one invalid combination.
//!
//! This harness *executes* each combination end-to-end on a two-rank
//! fabric and prints the observed validity/behaviour table.

use lci::{collective, Comp, CompKind, Direction, Fabric, PostResult, Runtime, RuntimeConfig};
use std::sync::Arc;

fn main() {
    println!("# Table 1: post_comm paradigm matrix (executed end-to-end)");
    println!("direction\tremote_buf\tremote_comp\tvalidity\toperation\tobserved");

    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let peer = std::thread::spawn(move || peer_rank(f2));
    let rt = Runtime::new(fabric, 0, RuntimeConfig::small()).unwrap();
    rt.oob_barrier();

    // Shared window on rank 1 for the RMA rows; rkey exchanged OOB.
    let window = vec![0u8; 1024];
    let mr = rt.register_memory(&window).unwrap();
    let all = rt.fabric().oob_allgather(0, mr.rkey.0.to_le_bytes().to_vec());
    let rkey1 = lci::Rkey(u32::from_le_bytes(all[1][..4].try_into().unwrap()));
    let sig = rt.register_rcomp(Comp::alloc_cq()); // rcomp 0 everywhere
    assert_eq!(sig, 0);
    rt.oob_barrier();

    let row = |dir, rbuf, rcomp, validity, op: &str, observed: &str| {
        println!("{dir}\t{rbuf}\t{rcomp}\t{validity}\t{op}\t{observed}");
    };

    // OUT / none / none -> send.
    let c = Comp::alloc_sync(1);
    let r = rt.post_send(1, vec![1u8; 256], 1, c.clone()).unwrap();
    wait(&rt, &c, &r);
    row("OUT", "none", "none", "yes", "send", "delivered");

    // OUT / none / specified -> active message.
    let c = Comp::alloc_sync(1);
    let r = rt.post_am(1, vec![2u8; 256], c.clone(), 0).unwrap();
    wait(&rt, &c, &r);
    row("OUT", "none", "specified", "yes", "active message", "delivered");

    // OUT / specified / none -> RMA put.
    let c = Comp::alloc_sync(1);
    let r = rt.post_put(1, vec![3u8; 64], rkey1, 0, c.clone()).unwrap();
    wait(&rt, &c, &r);
    row("OUT", "specified", "none", "yes", "RMA put", "written");

    // OUT / specified / specified -> put with signal.
    let c = Comp::alloc_sync(1);
    let r = rt
        .post_put_x(1, vec![4u8; 64], rkey1, 64, c.clone())
        .remote_comp(0)
        .tag(44)
        .call()
        .unwrap();
    wait(&rt, &c, &r);
    row("OUT", "specified", "specified", "yes", "RMA put w. signal", "written+signaled");

    // IN / none / none -> receive (peer sends us one message).
    rt.oob_barrier(); // peer: send now
    let c = Comp::alloc_sync(1);
    let r = rt.post_recv(1, vec![0u8; 512], 7, c.clone()).unwrap();
    wait(&rt, &c, &r);
    row("IN", "none", "none", "yes", "receive", "delivered");

    // IN / none / specified -> invalid.
    let err = rt
        .post_comm_x(Direction::In, 1)
        .recv_buf(vec![0u8; 8])
        .comp(Comp::alloc_sync(1))
        .remote_comp(0)
        .call();
    row(
        "IN",
        "none",
        "specified",
        "NO",
        "-",
        if err.is_err() { "rejected (InvalidArg)" } else { "unexpectedly accepted" },
    );

    // IN / specified / none -> RMA get.
    let c = Comp::alloc_sync(1);
    let r = rt.post_get(1, vec![0u8; 64], rkey1, 0, c.clone()).unwrap();
    wait(&rt, &c, &r);
    row("IN", "specified", "none", "yes", "RMA get", "read");

    // IN / specified / specified -> get with signal (extension: the
    // paper's interconnects lack RDMA-read-with-notify; ours does not).
    let c = Comp::alloc_sync(1);
    let r =
        rt.post_get_x(1, vec![0u8; 64], rkey1, 0, c.clone()).remote_comp(0).tag(55).call().unwrap();
    wait(&rt, &c, &r);
    row("IN", "specified", "specified", "yes", "RMA get w. signal", "read+signaled");

    collective::barrier(&rt).unwrap();
    drop(window);
    peer.join().unwrap();
}

fn wait(rt: &Runtime, c: &Comp, r: &PostResult) {
    if r.is_posted() {
        let sync = c.as_sync().unwrap();
        while !sync.test() {
            rt.progress().unwrap();
        }
        sync.reset();
    }
}

fn peer_rank(fabric: Arc<Fabric>) {
    let rt = Runtime::new(fabric, 1, RuntimeConfig::small()).unwrap();
    rt.oob_barrier();
    let window = vec![0u8; 1024];
    let mr = rt.register_memory(&window).unwrap();
    let _ = rt.fabric().oob_allgather(1, mr.rkey.0.to_le_bytes().to_vec());
    let sig_cq = Comp::alloc_cq();
    rt.register_rcomp(sig_cq.clone());
    rt.oob_barrier();

    // Serve: one recv (for the send row), one AM, the put/get signals,
    // and send one message for rank 0's receive row.
    let recv = Comp::alloc_sync(1);
    rt.post_recv(0, vec![0u8; 512], 1, recv.clone()).unwrap();

    let mut am_seen = false;
    let mut signals = 0;
    loop {
        rt.progress().unwrap();
        if let Some(d) = sig_cq.pop() {
            match d.kind {
                CompKind::Am => am_seen = true,
                CompKind::RemoteSignal => signals += 1,
                _ => {}
            }
        }
        if recv.as_sync().unwrap().test() && am_seen && signals >= 1 {
            break;
        }
    }
    rt.oob_barrier(); // rank 0 posts its receive row
    let c = Comp::alloc_sync(1);
    let r = rt.post_send(0, vec![7u8; 128], 7, c.clone()).unwrap();
    if r.is_posted() {
        let sync = c.as_sync().unwrap();
        while !sync.test() {
            rt.progress().unwrap();
        }
    }
    // Keep progressing until the final barrier (serves the get-signal).
    collective::barrier(&rt).unwrap();
    drop(window);
}
