//! Paper Figure 6: k-mer counting strong scaling.
//!
//! Fixed dataset (chr14-shaped synthetic reads), rank count swept;
//! series: multithreaded LCI, multithreaded GASNet, and the
//! single-threaded reference mode (HipMer/UPC++-style: one thread per
//! rank, more ranks for the same core budget). The paper's shapes to
//! reproduce: LCI-mt ≥ GASNet-mt (35-55% at scale), and multithreading
//! beats the one-process-per-core reference once load imbalance bites.

use bench::{env_usize, print_header, print_row, quick};
use kmer::{run_rank, serial_reference, KmerConfig, ReadSetConfig};
use lci_fabric::Fabric;
use lcw::{BackendKind, Platform, ResourceMode, WorldConfig};

fn run_config(nranks: usize, cfg: KmerConfig) -> (f64, u64) {
    let fabric = Fabric::new(nranks);
    let handles: Vec<_> = (0..nranks)
        .map(|r| {
            let fabric = fabric.clone();
            std::thread::spawn(move || run_rank(fabric, r, cfg))
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let max_t = results.iter().map(|r| r.count_time.as_secs_f64()).fold(0.0, f64::max);
    (max_t, results[0].distinct)
}

fn main() {
    let scale = if quick() { 1 } else { env_usize("BENCH_KMER_SCALE", 4) };
    let reads = ReadSetConfig {
        genome_len: 20_000 * scale,
        n_reads: 2_000 * scale,
        read_len: 100,
        error_rate: 0.01,
        seed: 42,
    };
    let base = KmerConfig {
        reads,
        k: 31,
        nthreads: 2,
        agg_size: 8192,
        world: WorldConfig::new(BackendKind::Lci, Platform::Expanse, ResourceMode::Dedicated(2)),
        expected_distinct: reads.genome_len * 2,
        max_count: 64,
    };
    println!("# Fig 6: k-mer counting strong scaling");
    println!(
        "# paper: chr14 (37M reads, 1.8G k-mers, k=51), 1-32 nodes; here: {} reads, k={}, scaled sweeps",
        reads.n_reads, base.k
    );
    let serial = serial_reference(&base, 1);
    println!(
        "# serial reference: {:.3}s, distinct={}",
        serial.count_time.as_secs_f64(),
        serial.distinct
    );

    let rank_sweep: Vec<usize> = if quick() { vec![2] } else { vec![2, 4] };
    print_header("Fig6 k-mer counting", &["ranks", "mode", "time_s", "distinct"]);
    for &nranks in &rank_sweep {
        // Multithreaded LCI (all-worker, dedicated devices).
        let cfg = KmerConfig {
            world: WorldConfig::new(
                BackendKind::Lci,
                Platform::Expanse,
                ResourceMode::Dedicated(base.nthreads),
            ),
            ..base
        };
        let (t, d) = run_config(nranks, cfg);
        print_row(&[nranks.to_string(), "lci-mt".into(), format!("{t:.3}"), d.to_string()]);

        // Multithreaded GASNet (all-worker on the shared endpoint).
        let cfg = KmerConfig {
            world: WorldConfig::new(BackendKind::Gasnet, Platform::Expanse, ResourceMode::Shared),
            ..base
        };
        let (t, d) = run_config(nranks, cfg);
        print_row(&[nranks.to_string(), "gasnet-mt".into(), format!("{t:.3}"), d.to_string()]);

        // Single-threaded reference mode: one thread per rank, twice the
        // ranks (same total workers) — the HipMer/UPC++ layout.
        let cfg = KmerConfig {
            nthreads: 1,
            world: WorldConfig::new(BackendKind::Gasnet, Platform::Expanse, ResourceMode::Shared),
            ..base
        };
        let (t, d) = run_config(nranks * base.nthreads, cfg);
        print_row(&[
            format!("{}(x1thr)", nranks * base.nthreads),
            "ref-st".into(),
            format!("{t:.3}"),
            d.to_string(),
        ]);
    }
}
