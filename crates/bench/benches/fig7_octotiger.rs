//! Paper Figure 7: Octo-Tiger (octo-mini) strong scaling over the AMT
//! runtime — time per step for the LCI, standard-MPI, and MPICH-VCI
//! (mpix) parcelports, plus the paper's resource-count observation:
//! mpix needs ~8 VCIs to peak while LCI peaks at 1-2 devices.

use amt::{run_octo_rank, OctoConfig};
use bench::{env_usize, print_header, print_row, quick};
use lci_fabric::Fabric;
use lcw::{BackendKind, Platform, ResourceMode, WorldConfig};

fn run(nranks: usize, cfg: OctoConfig) -> f64 {
    let fabric = Fabric::new(nranks);
    let handles: Vec<_> = (0..nranks)
        .map(|r| {
            let fabric = fabric.clone();
            std::thread::spawn(move || run_octo_rank(fabric, r, cfg))
        })
        .collect();
    let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Time per step: mean over steps of the max across ranks.
    let steps = stats[0].step_times.len();
    (0..steps)
        .map(|s| stats.iter().map(|st| st.step_times[s].as_secs_f64()).fold(0.0, f64::max))
        .sum::<f64>()
        / steps as f64
}

fn main() {
    let nthreads = env_usize("BENCH_MAX_THREADS", 4).clamp(1, 8);
    let n_particles = if quick() { 400 } else { env_usize("BENCH_OCTO_PARTICLES", 3000) };
    let steps = if quick() { 1 } else { 3 };
    let base = OctoConfig {
        n_particles,
        steps,
        nthreads,
        chunk: 64,
        world: WorldConfig::new(
            BackendKind::Lci,
            Platform::Expanse,
            ResourceMode::Dedicated(nthreads),
        ),
        ..OctoConfig::default()
    };
    println!("# Fig 7: octo-mini (rotating star) time per step");
    println!(
        "# paper: Octo-Tiger on HPX, Expanse+Delta; here: {n_particles} particles, {nthreads} workers/rank, {steps} steps"
    );

    let rank_sweep: Vec<usize> = if quick() { vec![2] } else { vec![2, 4] };
    for platform in [Platform::Expanse, Platform::Delta] {
        print_header(
            &format!(
                "Fig7 {}",
                if platform == Platform::Expanse { "expanse(ibv-sim)" } else { "delta(ofi-sim)" }
            ),
            &["ranks", "parcelport", "s/step"],
        );
        for &nranks in &rank_sweep {
            for (name, backend, mode) in [
                ("lci", BackendKind::Lci, ResourceMode::Dedicated(nthreads)),
                ("mpi", BackendKind::Mpi, ResourceMode::Shared),
                ("mpix", BackendKind::Vci, ResourceMode::Dedicated(nthreads)),
            ] {
                let cfg = OctoConfig { world: WorldConfig::new(backend, platform, mode), ..base };
                let t = run(nranks, cfg);
                print_row(&[nranks.to_string(), name.into(), format!("{t:.4}")]);
            }
        }
    }

    // The resource-count observation: LCI device count vs mpix VCI count.
    print_header("Fig7 resource-count sweep (2 ranks, expanse)", &["lib", "resources", "s/step"]);
    for devs in [1usize, 2] {
        let cfg = OctoConfig {
            world: WorldConfig::new(
                BackendKind::Lci,
                Platform::Expanse,
                ResourceMode::Dedicated(devs),
            ),
            // Parcelport endpoints follow the pool size; cap workers to
            // the device count for the sweep.
            nthreads: devs.max(1),
            ..base
        };
        let t = run(2, cfg);
        print_row(&["lci".into(), devs.to_string(), format!("{t:.4}")]);
    }
    for vcis in [1usize, 2, 4] {
        let cfg = OctoConfig {
            world: WorldConfig::new(
                BackendKind::Vci,
                Platform::Expanse,
                ResourceMode::Dedicated(vcis),
            ),
            nthreads: vcis.max(1),
            ..base
        };
        let t = run(2, cfg);
        print_row(&["mpix".into(), vcis.to_string(), format!("{t:.4}")]);
    }
}
