//! Shared machinery for the figure/table harnesses (paper §5).
//!
//! Every `benches/figN_*.rs` binary reproduces one paper figure or
//! table: same workload, same parameter sweeps (scaled to this
//! machine), same row/series layout. Environment knobs:
//!
//! * `BENCH_MAX_THREADS` — caps the thread/pair sweeps (default 4; the
//!   paper sweeps to 128 on 128-core nodes);
//! * `BENCH_ITERS` — per-thread iterations (default 2000; paper: 100k);
//! * `BENCH_QUICK=1` — minimal sweep for smoke-testing the harness.
//!
//! The metric conventions follow the paper: message rate in million
//! messages per second (unidirectional), bandwidth in MiB/s
//! (unidirectional), resource throughput in million operations per
//! second.

use lci_fabric::Fabric;
use lcw::{BackendKind, Platform, ResourceMode, World, WorldConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Reads a `usize` environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Whether quick (smoke) mode is on.
pub fn quick() -> bool {
    std::env::var("BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The thread-count sweep (paper: 1..128; here capped for one box).
pub fn thread_sweep() -> Vec<usize> {
    if quick() {
        return vec![1, 2];
    }
    let max = env_usize("BENCH_MAX_THREADS", 4);
    let mut v = vec![];
    let mut t = 1;
    while t <= max {
        v.push(t);
        t *= 2;
    }
    v
}

/// Per-thread iteration count.
pub fn iters() -> usize {
    if quick() {
        200
    } else {
        env_usize("BENCH_ITERS", 2000)
    }
}

/// The scale-matrix thread axis (paper: 8→128 threads per node).
/// `BENCH_MATRIX_THREADS` overrides it with a comma-separated list;
/// quick mode shrinks it to a smoke-sized `2,4`. On hosts with fewer
/// cores than threads the runs are oversubscribed — the matrix header
/// says so rather than pretending the parallelism is real.
pub fn matrix_thread_sweep() -> Vec<usize> {
    let spec = std::env::var("BENCH_MATRIX_THREADS").unwrap_or_else(|_| {
        if quick() {
            "2,4".into()
        } else {
            "8,16,32,64,128".into()
        }
    });
    let mut v: Vec<usize> =
        spec.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&t| t > 0).collect();
    if v.is_empty() {
        v.push(2);
    }
    v
}

/// Prints a table header.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", cols.join("\t"));
}

/// Prints one table row.
pub fn print_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Pretty backend names matching the paper's legends.
pub fn lib_name(b: BackendKind) -> &'static str {
    match b {
        BackendKind::Lci => "lci",
        BackendKind::Mpi => "mpi",
        BackendKind::Vci => "mpix",
        BackendKind::Gasnet => "gasnet",
    }
}

/// Pretty platform names.
pub fn platform_name(p: Platform) -> &'static str {
    match p {
        Platform::Expanse => "expanse(ibv-sim)",
        Platform::Delta => "delta(ofi-sim)",
        Platform::ShmHost => "shm",
        Platform::TcpHost => "tcp",
    }
}

/// The platform axis of the sweeps: both simulated platforms by
/// default, or exactly the transport named by `--transport`/
/// `LCI_TRANSPORT` when one is given (so
/// `cargo bench --bench fig3_msgrate_thread -- --transport shm`
/// regenerates one figure on the real wire).
pub fn platform_sweep() -> Vec<Platform> {
    match Platform::selected() {
        Some(p) => vec![p],
        None => vec![Platform::Expanse, Platform::Delta],
    }
}

/// Ping tag namespace: pings carry the thread id, pongs carry
/// `PONG_BASE + thread id`.
const PONG_BASE: u32 = 1 << 20;

/// Homes worker `t` on the logical core map (`t mod cores`). A real
/// launcher pins worker OS threads to cores; the harness mirrors that
/// on [`lci::topology`]'s logical map so per-core resource layouts see
/// the same worker→core picture the paper's pinned runs do. No-op for
/// the baseline backends and with placement disabled.
fn pin_worker(cfg: &WorldConfig, t: usize) {
    if cfg.backend == BackendKind::Lci && cfg.placement.enabled {
        lci::topology::bind_current_thread(t % cfg.placement.effective_cores());
    }
}

/// Runs the paper's message-rate microbenchmark in thread-based mode:
/// one process ("node") per rank, `nthreads` workers per rank, each
/// ping-ponging 8-byte active messages with its peer. Returns the
/// unidirectional rate in Mmsg/s.
///
/// Shared resources may deliver a pong to any thread, so credits are
/// accounted per thread id through shared counters (the scheme the LCW
/// microbenchmarks use).
pub fn msgrate_thread_based(
    backend: BackendKind,
    platform: Platform,
    mode: ResourceMode,
    nthreads: usize,
    iters: usize,
    msg_size: usize,
) -> f64 {
    let cfg = WorldConfig::new(backend, platform, mode);
    msgrate_thread_based_cfg(cfg, nthreads, iters, msg_size)
}

/// [`msgrate_thread_based`] with an explicit [`WorldConfig`] — the entry
/// point for ablations that toggle config knobs (storage recycling,
/// coalescing, ...).
pub fn msgrate_thread_based_cfg(
    cfg: WorldConfig,
    nthreads: usize,
    iters: usize,
    msg_size: usize,
) -> f64 {
    msgrate_thread_based_stats(cfg, nthreads, iters, msg_size).0
}

/// [`msgrate_thread_based_cfg`] that also returns rank 0's LCI device
/// stats delta over the timed section (`None` on the baseline
/// backends) — the entry point for ablations that need counter evidence
/// (progress-engine poll/park/doorbell accounting).
pub fn msgrate_thread_based_stats(
    cfg: WorldConfig,
    nthreads: usize,
    iters: usize,
    msg_size: usize,
) -> (f64, Option<lci::StatsSnapshot>) {
    let fabric = Fabric::new(2);
    let total = (nthreads * iters) as u64;
    let elapsed = Arc::new(AtomicU64::new(0));
    let stats_out: Arc<parking_lot::Mutex<Option<lci::StatsSnapshot>>> =
        Arc::new(parking_lot::Mutex::new(None));

    let mk_rank = |rank: usize, fabric: Arc<Fabric>, elapsed: Arc<AtomicU64>| {
        let stats_out = stats_out.clone();
        std::thread::spawn(move || {
            let world = Arc::new(World::new(fabric.clone(), rank, cfg));
            let stats_base = world.endpoint(0).lci_device().map(|d| d.stats()).unwrap_or_default();
            // credits[t]: pongs received for thread t (rank 0);
            // pings seen for thread t (rank 1 forwards immediately).
            let credits: Arc<Vec<AtomicU64>> =
                Arc::new((0..nthreads).map(|_| AtomicU64::new(0)).collect());
            let served = Arc::new(AtomicU64::new(0));
            fabric.oob_barrier();
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..nthreads {
                    let world = world.clone();
                    let credits = credits.clone();
                    let served = served.clone();
                    scope.spawn(move || {
                        pin_worker(&cfg, t);
                        let mut ep = world.endpoint(t);
                        let payload = vec![0u8; msg_size];
                        if rank == 0 {
                            let mut got = 0u64;
                            for _ in 0..iters {
                                while !ep.send_am(1, &payload, t as u32) {
                                    ep.progress();
                                }
                                // Wait for one more credit for thread t.
                                got += 1;
                                while credits[t].load(Ordering::Acquire) < got {
                                    ep.progress();
                                    while let Some(m) = ep.poll_msg() {
                                        let tid = (m.tag - PONG_BASE) as usize;
                                        credits[tid].fetch_add(1, Ordering::AcqRel);
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        } else {
                            // Serve pings until the global quota is met.
                            while served.load(Ordering::Acquire) < total {
                                ep.progress();
                                while let Some(m) = ep.poll_msg() {
                                    let tid = m.tag;
                                    while !ep.send_am(0, &m.data, PONG_BASE + tid) {
                                        ep.progress();
                                    }
                                    served.fetch_add(1, Ordering::AcqRel);
                                }
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
            let dt = t0.elapsed();
            fabric.oob_barrier();
            if rank == 0 {
                elapsed.store(dt.as_nanos() as u64, Ordering::Release);
                *stats_out.lock() =
                    world.endpoint(0).lci_device().map(|d| d.stats().since(&stats_base));
            }
            drop(world);
        })
    };

    let h0 = mk_rank(0, fabric.clone(), elapsed.clone());
    let h1 = mk_rank(1, fabric, elapsed.clone());
    h0.join().unwrap();
    h1.join().unwrap();
    let ns = elapsed.load(Ordering::Acquire) as f64;
    let stats = stats_out.lock().take();
    // Unidirectional: count pings only.
    (total as f64 / (ns / 1e9) / 1e6, stats)
}

/// Process-based mode (paper Fig. 2): `pairs` ranks per "node", one
/// thread per rank, rank i pairs with rank pairs+i. Returns Mmsg/s.
pub fn msgrate_process_based(
    backend: BackendKind,
    platform: Platform,
    pairs: usize,
    iters: usize,
) -> f64 {
    let nranks = pairs * 2;
    let fabric = Fabric::new(nranks);
    let cfg = WorldConfig::new(backend, platform, ResourceMode::Shared);
    let elapsed: Arc<Vec<AtomicU64>> = Arc::new((0..pairs).map(|_| AtomicU64::new(0)).collect());

    let handles: Vec<_> = (0..nranks)
        .map(|rank| {
            let fabric = fabric.clone();
            let elapsed = elapsed.clone();
            std::thread::spawn(move || {
                let world = World::new(fabric.clone(), rank, cfg);
                let mut ep = world.endpoint(0);
                let payload = vec![0u8; 8];
                fabric.oob_barrier();
                let t0 = Instant::now();
                if rank < pairs {
                    let peer = pairs + rank;
                    for _ in 0..iters {
                        while !ep.send_am(peer, &payload, 0) {
                            ep.progress();
                        }
                        loop {
                            ep.progress();
                            if ep.poll_msg().is_some() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                    elapsed[rank].store(t0.elapsed().as_nanos() as u64, Ordering::Release);
                } else {
                    let peer = rank - pairs;
                    for _ in 0..iters {
                        loop {
                            ep.progress();
                            if ep.poll_msg().is_some() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        while !ep.send_am(peer, &payload, 0) {
                            ep.progress();
                        }
                    }
                }
                fabric.oob_barrier();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Aggregate unidirectional rate: sum of per-pair rates.
    let total_rate: f64 = (0..pairs)
        .map(|i| {
            let ns = elapsed[i].load(Ordering::Acquire) as f64;
            iters as f64 / (ns / 1e9)
        })
        .sum();
    total_rate / 1e6
}

/// Bandwidth microbenchmark (paper Fig. 4): `nthreads` per rank,
/// windowed unidirectional send-receive streams of `size`-byte
/// messages. Returns MiB/s aggregated over threads.
pub fn bandwidth_thread_based(
    backend: BackendKind,
    platform: Platform,
    mode: ResourceMode,
    nthreads: usize,
    size: usize,
    iters: usize,
) -> f64 {
    let cfg = WorldConfig::new(backend, platform, mode);
    bandwidth_thread_based_cfg(cfg, nthreads, size, iters)
}

/// [`bandwidth_thread_based`] with an explicit [`WorldConfig`] — the
/// entry point for ablations that toggle config knobs (rendezvous
/// chunking, the registration cache, ...).
pub fn bandwidth_thread_based_cfg(
    cfg: WorldConfig,
    nthreads: usize,
    size: usize,
    iters: usize,
) -> f64 {
    bandwidth_thread_based_stats(cfg, nthreads, size, iters).0
}

/// [`bandwidth_thread_based_cfg`] that also returns rank 0's LCI device
/// stats delta over the timed section (`None` on the baseline
/// backends) — counter evidence for the scale matrix (pool locality,
/// steal counts, matching contention).
pub fn bandwidth_thread_based_stats(
    cfg: WorldConfig,
    nthreads: usize,
    size: usize,
    iters: usize,
) -> (f64, Option<lci::StatsSnapshot>) {
    const WINDOW: usize = 8;
    let fabric = Fabric::new(2);
    let elapsed = Arc::new(AtomicU64::new(0));
    let stats_out: Arc<parking_lot::Mutex<Option<lci::StatsSnapshot>>> =
        Arc::new(parking_lot::Mutex::new(None));

    let mk_rank = |rank: usize, fabric: Arc<Fabric>, elapsed: Arc<AtomicU64>| {
        let stats_out = stats_out.clone();
        std::thread::spawn(move || {
            let world = Arc::new(World::new(fabric.clone(), rank, cfg));
            let stats_base = world.endpoint(0).lci_device().map(|d| d.stats()).unwrap_or_default();
            fabric.oob_barrier();
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..nthreads {
                    let world = world.clone();
                    scope.spawn(move || {
                        pin_worker(&cfg, t);
                        let mut ep = world.endpoint(t);
                        let payload = vec![(t & 0xFF) as u8; size];
                        if rank == 0 {
                            for _ in 0..iters {
                                // Fill a window of sends, then wait for
                                // the 1-byte credit.
                                for w in 0..WINDOW {
                                    let tag = (t * WINDOW + w) as u32;
                                    while !ep.send(1, &payload, tag) {
                                        ep.progress();
                                    }
                                }
                                let tok = ep.post_recv(1, 0xF000 + t as u32, 8);
                                loop {
                                    ep.progress();
                                    if ep.test_recv(&tok).is_some() {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        } else {
                            for _ in 0..iters {
                                let toks: Vec<_> = (0..WINDOW)
                                    .map(|w| {
                                        let tag = (t * WINDOW + w) as u32;
                                        ep.post_recv(0, tag, size.max(8))
                                    })
                                    .collect();
                                for tok in &toks {
                                    loop {
                                        ep.progress();
                                        if ep.test_recv(tok).is_some() {
                                            break;
                                        }
                                        std::thread::yield_now();
                                    }
                                }
                                while !ep.send(0, &[1u8; 1], 0xF000 + t as u32) {
                                    ep.progress();
                                }
                            }
                        }
                    });
                }
            });
            let dt = t0.elapsed();
            fabric.oob_barrier();
            if rank == 0 {
                elapsed.store(dt.as_nanos() as u64, Ordering::Release);
                *stats_out.lock() =
                    world.endpoint(0).lci_device().map(|d| d.stats().since(&stats_base));
            }
        })
    };
    let h0 = mk_rank(0, fabric.clone(), elapsed.clone());
    let h1 = mk_rank(1, fabric, elapsed.clone());
    h0.join().unwrap();
    h1.join().unwrap();
    let ns = elapsed.load(Ordering::Acquire) as f64;
    let stats = stats_out.lock().take();
    let bytes = (nthreads * iters * WINDOW * size) as f64;
    (bytes / (ns / 1e9) / (1024.0 * 1024.0), stats)
}
