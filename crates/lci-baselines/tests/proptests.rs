//! Property-based tests for the baseline libraries: header codecs and
//! channel delivery semantics (in-order wildcard matching, arbitrary
//! message sizes spanning eager and rendezvous).

use lci_baselines::channel::{Channel, ChannelConfig};
use lci_baselines::proto;
use lci_baselines::{ANY_SOURCE, ANY_TAG};
use lci_fabric::Fabric;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Baseline wire headers round-trip.
    #[test]
    fn header_roundtrip(ty in 1u64..6, tag in any::<u32>(), aux in 0u32..(1 << 24)) {
        let t = proto::BType::from_bits(ty).unwrap();
        let (t2, tag2, aux2) = proto::decode(proto::encode(t, tag, aux)).unwrap();
        prop_assert_eq!(t2, t);
        prop_assert_eq!(tag2, tag);
        prop_assert_eq!(aux2, aux);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Arbitrary message sizes (eager and rendezvous) arrive intact and
    /// ANY/ANY receives observe arrival order.
    #[test]
    fn channel_delivery_in_order(sizes in proptest::collection::vec(1usize..20_000, 1..6)) {
        let fabric = Fabric::new(2);
        let cfg = ChannelConfig::default();
        let a = Arc::new(Channel::new(fabric.clone(), 0, cfg));
        let b = Arc::new(Channel::new(fabric, 1, cfg));

        let reqs: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| a.isend(1, a.dev_id(), vec![i as u8; s], i as u32))
            .collect();

        // Drive both sides until all sends complete (rendezvous needs
        // the receiver posted, so interleave the receives).
        let mut received = Vec::new();
        for _ in 0..sizes.len() {
            let r = b.irecv(ANY_SOURCE, ANY_TAG, 32_000);
            loop {
                a.progress();
                b.progress();
                if r.is_done() {
                    break;
                }
            }
            received.push(r.take_status().unwrap());
        }
        for req in &reqs {
            a.wait(req);
        }
        // In-order delivery: tags ascend in arrival order for a single
        // sender (eager messages overtake rendezvous only if posted
        // later... the baseline queues preserve per-pair order because
        // each message fully matches before the next receive is posted).
        for (i, st) in received.iter().enumerate() {
            prop_assert_eq!(st.tag, i as u32);
            prop_assert_eq!(st.data.len(), sizes[i]);
            prop_assert!(st.data.iter().all(|&x| x == i as u8));
        }
    }

    /// Tag-specific receives pick exactly the matching message whatever
    /// order things arrived in.
    #[test]
    fn channel_tag_matching(_perm in Just(()), ntags in 2usize..6) {
        let fabric = Fabric::new(2);
        let cfg = ChannelConfig::default();
        let a = Arc::new(Channel::new(fabric.clone(), 0, cfg));
        let b = Arc::new(Channel::new(fabric, 1, cfg));
        for t in 0..ntags {
            let s = a.isend(1, a.dev_id(), vec![t as u8; 10 + t], t as u32);
            a.wait(&s);
        }
        for _ in 0..200 {
            b.progress();
        }
        // Receive in reverse tag order.
        for t in (0..ntags).rev() {
            let r = b.irecv(0, t as u32, 64);
            let st = b.wait(&r);
            prop_assert_eq!(st.data.len(), 10 + t);
            prop_assert!(st.data.iter().all(|&x| x == t as u8));
        }
    }
}
