//! The coarse-locked two-sided channel shared by [`crate::mpi_sim`] (one
//! channel per process) and [`crate::vci`] (N channels per process).
//!
//! Design goals mirror a classic `MPI_THREAD_MULTIPLE` implementation:
//!
//! * **one mutex** protects the entire matching and progress state —
//!   every isend/irecv/test acquires it (the serialization the
//!   multithreaded-MPI literature fights);
//! * **in-order matching with wildcards**: posted receives and unexpected
//!   messages live in FIFO queues scanned linearly, because `ANY_SOURCE`
//!   / `ANY_TAG` forbid the hashtable shortcut LCI uses (paper §3.3.2);
//! * **progress as a side effect**: there is no user-visible progress
//!   call in MPI; `test`/`wait` drive the engine (`progress` is public
//!   here so wrappers can pump it explicitly too);
//! * the fabric device is created with **blocking lock acquisition**,
//!   like stock MPI implementations driving verbs/libfabric.

use crate::proto::{self, BType};
use lci_fabric::sync::{LockDiscipline, SpinLock};
use lci_fabric::{
    Cqe, CqeKind, DevId, DeviceConfig, Fabric, MemoryRegion, NetContext, NetDevice, NetError, Rank,
    RecvBufDesc, Rkey,
};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Wildcard source.
pub const ANY_SOURCE: usize = usize::MAX;
/// Wildcard tag.
pub const ANY_TAG: u32 = u32::MAX;

/// Completion record of a finished operation.
#[derive(Debug, Default)]
pub struct MpiStatus {
    /// Peer rank (source for receives).
    pub src: Rank,
    /// Message tag.
    pub tag: u32,
    /// Delivered data (receives only).
    pub data: Vec<u8>,
}

struct ReqInner {
    done: AtomicBool,
    status: SpinLock<Option<MpiStatus>>,
}

/// A nonblocking-operation handle (MPI request analog).
#[derive(Clone)]
pub struct Request {
    inner: Arc<ReqInner>,
}

impl Request {
    fn new() -> Self {
        Self {
            inner: Arc::new(ReqInner { done: AtomicBool::new(false), status: SpinLock::new(None) }),
        }
    }

    fn complete(&self, status: MpiStatus) {
        *self.inner.status.lock() = Some(status);
        self.inner.done.store(true, Ordering::Release);
    }

    /// Whether the operation has completed (does not progress).
    pub fn is_done(&self) -> bool {
        self.inner.done.load(Ordering::Acquire)
    }

    /// Takes the completion status after `is_done`.
    pub fn take_status(&self) -> Option<MpiStatus> {
        if !self.is_done() {
            return None;
        }
        self.inner.status.lock().take()
    }
}

/// Channel configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Fabric backend/lock configuration. Baselines default to blocking
    /// acquisition (stock library behaviour).
    pub device: DeviceConfig,
    /// Eager/rendezvous threshold and pre-posted buffer size.
    pub eager_size: usize,
    /// Pre-posted receive target.
    pub prepost: usize,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self {
            device: DeviceConfig::ibv().with_discipline(LockDiscipline::Blocking),
            eager_size: 8192,
            prepost: 64,
        }
    }
}

struct PostedRecv {
    src: Option<Rank>,
    tag: Option<u32>,
    max_size: usize,
    req: Request,
}

enum UnexpData {
    Eager(Vec<u8>),
    Rts { src_dev: DevId, send_id: u32, size: usize },
}

struct Unexp {
    src: Rank,
    tag: u32,
    data: UnexpData,
}

struct RdvSend {
    data: Vec<u8>,
    req: Request,
}

struct RdvRecv {
    buf: Box<[u8]>,
    mr: MemoryRegion,
    req: Request,
    src: Rank,
    tag: u32,
    size: usize,
}

struct PendingSend {
    dest: Rank,
    dest_dev: DevId,
    data: Vec<u8>,
    imm: u64,
    req: Option<Request>,
}

/// Simple id-reuse slab (duplicated from `lci` on purpose: baselines are
/// independent libraries).
struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Slab<T> {
    fn new() -> Self {
        Self { entries: Vec::new(), free: Vec::new() }
    }
    fn len(&self) -> usize {
        self.entries.len() - self.free.len()
    }
    fn insert(&mut self, v: T) -> u32 {
        if let Some(id) = self.free.pop() {
            self.entries[id as usize] = Some(v);
            id
        } else {
            self.entries.push(Some(v));
            (self.entries.len() - 1) as u32
        }
    }
    fn remove(&mut self, id: u32) -> Option<T> {
        let v = self.entries.get_mut(id as usize)?.take();
        if v.is_some() {
            self.free.push(id);
        }
        v
    }
    fn get(&self, id: u32) -> Option<&T> {
        self.entries.get(id as usize)?.as_ref()
    }
}

struct ChState {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexp>,
    /// Pre-posted staging buffers, addressed by slab id in the CQE ctx.
    staging: Slab<Box<[u8]>>,
    nposted: usize,
    pending_sends: VecDeque<PendingSend>,
    rdv_sends: Slab<RdvSend>,
    rdv_recvs: Slab<RdvRecv>,
}

/// One coarse-locked communication channel.
pub struct Channel {
    net: Arc<dyn NetDevice>,
    state: Mutex<ChState>,
    cfg: ChannelConfig,
    rank: Rank,
}

impl Channel {
    /// Creates a channel (one fabric device) for `rank`.
    pub fn new(fabric: Arc<Fabric>, rank: Rank, cfg: ChannelConfig) -> Self {
        let ctx = NetContext::new(fabric, rank);
        let net = ctx.create_device(cfg.device);
        let ch = Self {
            net,
            state: Mutex::new(ChState {
                posted: VecDeque::new(),
                unexpected: VecDeque::new(),
                staging: Slab::new(),
                nposted: 0,
                pending_sends: VecDeque::new(),
                rdv_sends: Slab::new(),
                rdv_recvs: Slab::new(),
            }),
            cfg,
            rank,
        };
        ch.with_lock(|c, st| c.replenish(st));
        ch
    }

    /// The channel's device index on its rank (for symmetric addressing).
    pub fn dev_id(&self) -> DevId {
        self.net.dev_id()
    }

    /// This channel's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    fn with_lock<R>(&self, f: impl FnOnce(&Self, &mut ChState) -> R) -> R {
        let mut st = self.state.lock();
        f(self, &mut st)
    }

    fn replenish(&self, st: &mut ChState) {
        while st.nposted < self.cfg.prepost {
            let buf = vec![0u8; self.cfg.eager_size].into_boxed_slice();
            let ptr = buf.as_ptr() as *mut u8;
            let len = buf.len();
            let id = st.staging.insert(buf);
            // SAFETY: the buffer lives in the staging slab (stable heap
            // address) until its completion reclaims it.
            let desc = unsafe { RecvBufDesc::new(ptr, len, id as u64) };
            match self.net.post_recv(desc) {
                Ok(()) => st.nposted += 1,
                Err(_) => {
                    st.staging.remove(id);
                    break;
                }
            }
        }
    }

    /// Nonblocking send. The returned request completes when the source
    /// buffer is reusable (eager: immediately after staging; rendezvous:
    /// after the remote write finishes).
    pub fn isend(&self, dest: Rank, dest_dev: DevId, data: Vec<u8>, tag: u32) -> Request {
        let req = Request::new();
        self.with_lock(|c, st| {
            if data.len() > c.cfg.eager_size {
                // Rendezvous.
                let send_id = st.rdv_sends.insert(RdvSend { data, req: req.clone() });
                let imm = proto::encode(BType::Rts, tag, 0);
                let payload = proto::encode_rts(
                    send_id,
                    st.rdv_sends.get(send_id).unwrap().data.len() as u64,
                );
                c.post_or_queue(st, dest, dest_dev, payload.to_vec(), imm, None);
            } else {
                let imm = proto::encode(BType::Eager, tag, 0);
                c.post_or_queue(st, dest, dest_dev, data, imm, Some(req.clone()));
            }
        });
        req
    }

    /// Attempts an eager/control post; queues it when the wire pushes
    /// back. `req` (if any) completes as soon as the payload is staged.
    fn post_or_queue(
        &self,
        st: &mut ChState,
        dest: Rank,
        dest_dev: DevId,
        data: Vec<u8>,
        imm: u64,
        req: Option<Request>,
    ) {
        match self.net.post_send(dest, dest_dev, &data, imm, 0) {
            Ok(()) => {
                if let Some(r) = req {
                    r.complete(MpiStatus { src: dest, tag: 0, data: Vec::new() });
                }
            }
            Err(NetError::Retry(_)) => {
                st.pending_sends.push_back(PendingSend { dest, dest_dev, data, imm, req });
            }
            Err(NetError::Fatal(m)) => panic!("baseline fatal network error: {m}"),
        }
    }

    /// Nonblocking receive. `src`/`tag` accept [`ANY_SOURCE`]/[`ANY_TAG`].
    /// The delivered data is returned in the request's status.
    pub fn irecv(&self, src: Rank, tag: u32, max_size: usize) -> Request {
        let req = Request::new();
        let want_src = if src == ANY_SOURCE { None } else { Some(src) };
        let want_tag = if tag == ANY_TAG { None } else { Some(tag) };
        self.with_lock(|c, st| {
            // In-order scan of the unexpected queue (wildcards force the
            // linear pass).
            let pos = st.unexpected.iter().position(|u| {
                want_src.is_none_or(|s| s == u.src) && want_tag.is_none_or(|t| t == u.tag)
            });
            if let Some(pos) = pos {
                let u = st.unexpected.remove(pos).unwrap();
                match u.data {
                    UnexpData::Eager(data) => {
                        req.complete(MpiStatus { src: u.src, tag: u.tag, data });
                    }
                    UnexpData::Rts { src_dev, send_id, size } => {
                        c.start_rtr(st, u.src, src_dev, u.tag, send_id, size, req.clone());
                    }
                }
            } else {
                st.posted.push_back(PostedRecv {
                    src: want_src,
                    tag: want_tag,
                    max_size,
                    req: req.clone(),
                });
            }
        });
        req
    }

    /// Target side of the rendezvous: register, reply RTR.
    #[allow(clippy::too_many_arguments)]
    fn start_rtr(
        &self,
        st: &mut ChState,
        src: Rank,
        src_dev: DevId,
        tag: u32,
        send_id: u32,
        size: usize,
        req: Request,
    ) {
        let buf = vec![0u8; size].into_boxed_slice();
        let mr = self.net.register(buf.as_ptr(), size).expect("register");
        let recv_id = st.rdv_recvs.insert(RdvRecv { buf, mr, req, src, tag, size });
        let imm = proto::encode(BType::Rtr, tag, 0);
        let payload = proto::encode_rtr(send_id, recv_id, mr.rkey.0);
        self.post_or_queue(st, src, src_dev, payload.to_vec(), imm, None);
    }

    /// Makes progress: drains pending sends and handles completions.
    /// Returns whether any work was done.
    pub fn progress(&self) -> bool {
        let mut cqes: Vec<Cqe> = Vec::with_capacity(64);
        let mut did = false;
        self.with_lock(|c, st| {
            // Retry queued sends first.
            while let Some(p) = st.pending_sends.pop_front() {
                match c.net.post_send(p.dest, p.dest_dev, &p.data, p.imm, 0) {
                    Ok(()) => {
                        did = true;
                        if let Some(r) = p.req {
                            r.complete(MpiStatus { src: p.dest, tag: 0, data: Vec::new() });
                        }
                    }
                    Err(NetError::Retry(_)) => {
                        st.pending_sends.push_front(p);
                        break;
                    }
                    Err(NetError::Fatal(m)) => panic!("baseline fatal: {m}"),
                }
            }
            match c.net.poll_cq(&mut cqes, 64) {
                Ok(n) => did |= n > 0,
                Err(NetError::Retry(_)) => {}
                Err(NetError::Fatal(m)) => panic!("baseline fatal: {m}"),
            }
            for cqe in cqes.drain(..) {
                c.handle_cqe(st, cqe);
            }
            c.replenish(st);
        });
        did
    }

    fn handle_cqe(&self, st: &mut ChState, cqe: Cqe) {
        match cqe.kind {
            CqeKind::SendDone => { /* staged control/eager; nothing */ }
            CqeKind::WriteDone => {
                // Rendezvous data write finished: source request done.
                let send_id = (cqe.ctx - 1) as u32;
                if let Some(s) = st.rdv_sends.remove(send_id) {
                    s.req.complete(MpiStatus { src: 0, tag: 0, data: Vec::new() });
                }
            }
            CqeKind::ReadDone => unreachable!("baselines do not read"),
            CqeKind::RecvDone => {
                let buf = st.staging.remove(cqe.ctx as u32).expect("staging buffer");
                st.nposted -= 1;
                let (ty, tag, _aux) = proto::decode(cqe.imm).expect("baseline header");
                match ty {
                    BType::Eager => {
                        let data = buf[..cqe.len].to_vec();
                        self.match_or_store(
                            st,
                            cqe.src_rank,
                            cqe.src_dev,
                            tag,
                            UnexpData::Eager(data),
                        );
                    }
                    BType::Rts => {
                        let (send_id, size) = proto::decode_rts(&buf[..cqe.len]).expect("rts");
                        self.match_or_store(
                            st,
                            cqe.src_rank,
                            cqe.src_dev,
                            tag,
                            UnexpData::Rts { src_dev: cqe.src_dev, send_id, size: size as usize },
                        );
                    }
                    BType::Rtr => {
                        let (send_id, recv_id, rkey) =
                            proto::decode_rtr(&buf[..cqe.len]).expect("rtr");
                        let imm = proto::encode(BType::Fin, 0, recv_id);
                        let data_ptr = st.rdv_sends.get(send_id).expect("rdv send");
                        // Write with FIN; ctx = send_id+1 (nonzero).
                        let res = self.net.post_write(
                            cqe.src_rank,
                            cqe.src_dev,
                            &data_ptr.data,
                            Rkey(rkey),
                            0,
                            Some(imm),
                            send_id as u64 + 1,
                        );
                        if let Err(NetError::Retry(_)) = res {
                            // Extremely rare: requeue the RTR as pending
                            // by re-injecting it into our own unexpected
                            // path via pending_sends is not possible —
                            // spin until accepted (stock MPI blocks too).
                            loop {
                                match self.net.post_write(
                                    cqe.src_rank,
                                    cqe.src_dev,
                                    &data_ptr.data,
                                    Rkey(rkey),
                                    0,
                                    Some(imm),
                                    send_id as u64 + 1,
                                ) {
                                    Ok(()) => break,
                                    Err(NetError::Retry(_)) => std::hint::spin_loop(),
                                    Err(NetError::Fatal(m)) => panic!("baseline fatal: {m}"),
                                }
                            }
                        } else if let Err(NetError::Fatal(m)) = res {
                            panic!("baseline fatal: {m}");
                        }
                    }
                    BType::Am | BType::Fin => panic!("unexpected {ty:?} on channel"),
                }
            }
            CqeKind::WriteImmRecv => {
                // FIN: the rendezvous receive is complete.
                let buf = st.staging.remove(cqe.ctx as u32).expect("staging buffer");
                st.nposted -= 1;
                drop(buf);
                let (ty, _tag, recv_id) = proto::decode(cqe.imm).expect("fin header");
                assert_eq!(ty, BType::Fin);
                let r = st.rdv_recvs.remove(recv_id).expect("rdv recv");
                let _ = self.net.deregister(&r.mr);
                let mut data = r.buf.into_vec();
                data.truncate(r.size);
                r.req.complete(MpiStatus { src: r.src, tag: r.tag, data });
            }
        }
    }

    /// Matches an incoming message against the posted-receive queue
    /// (in-order, wildcard-aware) or stores it as unexpected.
    fn match_or_store(
        &self,
        st: &mut ChState,
        src: Rank,
        _src_dev: DevId,
        tag: u32,
        data: UnexpData,
    ) {
        let pos = st
            .posted
            .iter()
            .position(|p| p.src.is_none_or(|s| s == src) && p.tag.is_none_or(|t| t == tag));
        match pos {
            Some(pos) => {
                let p = st.posted.remove(pos).unwrap();
                match data {
                    UnexpData::Eager(d) => {
                        assert!(d.len() <= p.max_size, "message exceeds posted receive size");
                        p.req.complete(MpiStatus { src, tag, data: d });
                    }
                    UnexpData::Rts { src_dev, send_id, size } => {
                        assert!(size <= p.max_size, "message exceeds posted receive size");
                        self.start_rtr(st, src, src_dev, tag, send_id, size, p.req);
                    }
                }
            }
            None => st.unexpected.push_back(Unexp { src, tag, data }),
        }
    }

    /// Number of operations still needing this channel's progress:
    /// queued sends plus in-flight rendezvous (both sides). A sender must
    /// keep progressing until this drains — a rendezvous needs the
    /// source to serve the RTR even after the destination counted all
    /// its arrivals.
    pub fn pending(&self) -> usize {
        let st = self.state.lock();
        st.pending_sends.len() + st.rdv_sends.len() + st.rdv_recvs.len()
    }

    /// Tests a request, progressing the channel (MPI semantics: progress
    /// happens inside test).
    pub fn test(&self, req: &Request) -> bool {
        if req.is_done() {
            return true;
        }
        self.progress();
        req.is_done()
    }

    /// Blocks until the request completes, returning its status.
    pub fn wait(&self, req: &Request) -> MpiStatus {
        while !req.is_done() {
            self.progress();
            std::hint::spin_loop();
        }
        req.take_status().expect("request status")
    }
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("rank", &self.rank)
            .field("dev_id", &self.net.dev_id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cfg: ChannelConfig) -> (Arc<Channel>, Arc<Channel>) {
        let fabric = Fabric::new(2);
        let a = Arc::new(Channel::new(fabric.clone(), 0, cfg));
        let b = Arc::new(Channel::new(fabric, 1, cfg));
        (a, b)
    }

    #[test]
    fn eager_send_recv() {
        let (a, b) = pair(ChannelConfig::default());
        let r = b.irecv(0, 5, 1024);
        let s = a.isend(1, 0, vec![7u8; 100], 5);
        assert!(a.wait(&s).data.is_empty());
        let st = b.wait(&r);
        assert_eq!(st.src, 0);
        assert_eq!(st.tag, 5);
        assert_eq!(st.data, vec![7u8; 100]);
    }

    #[test]
    fn rendezvous_large_message() {
        let (a, b) = pair(ChannelConfig::default());
        let big = (0..100_000u32).map(|x| x as u8).collect::<Vec<u8>>();
        let r = b.irecv(ANY_SOURCE, ANY_TAG, 200_000);
        let s = a.isend(1, 0, big.clone(), 42);
        // Both sides must progress for the rendezvous to complete.
        loop {
            a.progress();
            b.progress();
            if s.is_done() && r.is_done() {
                break;
            }
        }
        let st = r.take_status().unwrap();
        assert_eq!(st.tag, 42);
        assert_eq!(st.data, big);
    }

    #[test]
    fn wildcard_any_source_any_tag_in_order() {
        let (a, b) = pair(ChannelConfig::default());
        let s1 = a.isend(1, 0, vec![1], 10);
        let s2 = a.isend(1, 0, vec![2], 20);
        a.wait(&s1);
        a.wait(&s2);
        // Let both arrive unexpected.
        for _ in 0..100 {
            b.progress();
        }
        // ANY matching must deliver in arrival order.
        let r1 = b.irecv(ANY_SOURCE, ANY_TAG, 64);
        let st1 = b.wait(&r1);
        assert_eq!(st1.data, vec![1]);
        let r2 = b.irecv(ANY_SOURCE, ANY_TAG, 64);
        let st2 = b.wait(&r2);
        assert_eq!(st2.data, vec![2]);
    }

    #[test]
    fn tag_specific_skips_nonmatching() {
        let (a, b) = pair(ChannelConfig::default());
        let s1 = a.isend(1, 0, vec![1], 10);
        let s2 = a.isend(1, 0, vec![2], 20);
        a.wait(&s1);
        a.wait(&s2);
        for _ in 0..100 {
            b.progress();
        }
        let r20 = b.irecv(0, 20, 64);
        assert_eq!(b.wait(&r20).data, vec![2]);
        let r10 = b.irecv(0, 10, 64);
        assert_eq!(b.wait(&r10).data, vec![1]);
    }

    #[test]
    fn posted_before_arrival() {
        let (a, b) = pair(ChannelConfig::default());
        let r = b.irecv(0, 9, 64);
        assert!(!r.is_done());
        let s = a.isend(1, 0, vec![5u8; 32], 9);
        a.wait(&s);
        let st = b.wait(&r);
        assert_eq!(st.data, vec![5u8; 32]);
    }

    #[test]
    fn multithreaded_big_lock_correctness() {
        let (a, b) = pair(ChannelConfig::default());
        let nthreads = 4;
        let per = 100;
        let senders: Vec<_> = (0..nthreads)
            .map(|t| {
                let a = a.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        let tag = (t * 1000 + i) as u32;
                        let s = a.isend(1, 0, vec![t as u8; 64], tag);
                        a.wait(&s);
                    }
                })
            })
            .collect();
        let receivers: Vec<_> = (0..nthreads)
            .map(|t| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        let tag = (t * 1000 + i) as u32;
                        let r = b.irecv(0, tag, 256);
                        let st = b.wait(&r);
                        assert_eq!(st.data, vec![t as u8; 64]);
                    }
                })
            })
            .collect();
        for h in senders.into_iter().chain(receivers) {
            h.join().unwrap();
        }
    }
}
