//! GASNet-EX stand-in: one-sided active messages over a shared endpoint.
//!
//! Models the properties the paper leans on:
//!
//! * `am_request_medium`-style API: the call returns once the source
//!   buffer is reusable (the payload is staged);
//! * handlers run *inside* the poll path (`gex_AMPoll`), so they must be
//!   short and must not block — the restriction that distinguishes AMs
//!   from RPCs (paper §3.2);
//! * a single shared endpoint per process: GASNet-EX has no
//!   dedicated-resource mode (absent from the paper's Fig. 3a/3c), and
//!   all-worker polling funnels every thread through the shared device —
//!   harmless on the ibv-like backend (fine-grained CQ lock), ruinous on
//!   the ofi-like backend (endpoint lock), reproducing the Delta
//!   pathology of §5.3;
//! * internally the shared path is competently engineered (trylock
//!   discipline, bounded drains), matching GASNet-EX's good
//!   shared-resource numbers in Fig. 3b/3d.

use lci_fabric::sync::{LockDiscipline, MpmcArray, SpinLock};
use lci_fabric::{
    Cqe, CqeKind, DevId, DeviceConfig, Fabric, NetContext, NetDevice, NetError, Rank, RecvBufDesc,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An AM handler: receives (source rank, arg, payload).
pub type AmHandler = Box<dyn Fn(Rank, u32, &[u8]) + Send + Sync>;

/// GASNet-sim configuration.
#[derive(Clone, Copy, Debug)]
pub struct GasnetConfig {
    /// Fabric backend. The endpoint is shared; LCI-style replication is
    /// intentionally not offered.
    pub device: DeviceConfig,
    /// Maximum medium-AM payload (also the staging buffer size).
    pub max_medium: usize,
    /// Pre-posted receive target.
    pub prepost: usize,
}

impl Default for GasnetConfig {
    fn default() -> Self {
        Self {
            device: DeviceConfig::ibv().with_discipline(LockDiscipline::TryLock),
            max_medium: 8192,
            prepost: 64,
        }
    }
}

impl GasnetConfig {
    /// Expanse stand-in.
    pub fn ibv() -> Self {
        Self::default()
    }

    /// Delta stand-in.
    pub fn ofi() -> Self {
        Self {
            device: DeviceConfig::ofi().with_discipline(LockDiscipline::TryLock),
            ..Self::default()
        }
    }
}

struct Staging {
    bufs: Vec<Option<Box<[u8]>>>,
    free: Vec<u32>,
    nposted: usize,
}

/// A queued outbound AM awaiting send-queue space:
/// (target, device, payload, imm).
type PendingAm = (Rank, DevId, Vec<u8>, u64);

/// The GASNet-like endpoint.
pub struct Gasnet {
    net: Arc<dyn NetDevice>,
    handlers: MpmcArray<Arc<AmHandler>>,
    staging: SpinLock<Staging>,
    pending: SpinLock<VecDeque<PendingAm>>,
    polls: AtomicUsize,
    rank: Rank,
    nranks: usize,
    cfg: GasnetConfig,
}

impl Gasnet {
    /// Attaches the endpoint for `rank` ("gex_Client_Init + attach").
    pub fn init(fabric: Arc<Fabric>, rank: Rank, cfg: GasnetConfig) -> Arc<Self> {
        let nranks = fabric.nranks();
        let ctx = NetContext::new(fabric, rank);
        let net = ctx.create_device(cfg.device);
        let g = Arc::new(Self {
            net,
            handlers: MpmcArray::with_capacity(8),
            staging: SpinLock::new(Staging { bufs: Vec::new(), free: Vec::new(), nposted: 0 }),
            pending: SpinLock::new(VecDeque::new()),
            polls: AtomicUsize::new(0),
            rank,
            nranks,
            cfg,
        });
        g.replenish();
        g
    }

    /// This process's rank ("gex_TM_QueryRank").
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// Registers an AM handler at attach time; returns its index. All
    /// ranks must register handlers in the same order.
    pub fn register_handler(&self, f: impl Fn(Rank, u32, &[u8]) + Send + Sync + 'static) -> u32 {
        self.handlers.push(Arc::new(Box::new(f))) as u32
    }

    /// Sends a medium active message ("gex_AM_RequestMedium"): blocks (by
    /// internal retry) until the payload is staged, i.e. the source
    /// buffer is reusable on return.
    pub fn am_request_medium(&self, dest: Rank, handler: u32, arg: u32, payload: &[u8]) {
        assert!(payload.len() <= self.cfg.max_medium, "medium AM payload too large");
        let imm = crate::proto::encode(crate::proto::BType::Am, arg, handler);
        loop {
            match self.net.post_send(dest, self.net.dev_id(), payload, imm, 0) {
                Ok(()) => return,
                Err(NetError::Retry(_)) => {
                    // GASNet blocks inside the request until resources
                    // free up, polling to avoid deadlock.
                    self.poll();
                }
                Err(NetError::Fatal(m)) => panic!("gasnet fatal: {m}"),
            }
        }
    }

    /// Variant that gives up instead of blocking (used by the LCW
    /// wrapper which wants nonblocking semantics).
    pub fn am_try_request_medium(
        &self,
        dest: Rank,
        handler: u32,
        arg: u32,
        payload: &[u8],
    ) -> bool {
        if payload.len() > self.cfg.max_medium {
            return false;
        }
        let imm = crate::proto::encode(crate::proto::BType::Am, arg, handler);
        match self.net.post_send(dest, self.net.dev_id(), payload, imm, 0) {
            Ok(()) => true,
            Err(NetError::Retry(_)) => false,
            Err(NetError::Fatal(m)) => panic!("gasnet fatal: {m}"),
        }
    }

    /// Polls the shared endpoint ("gex_AMPoll"): drains completions and
    /// runs handlers inline. Returns whether anything was processed.
    pub fn poll(&self) -> bool {
        self.polls.fetch_add(1, Ordering::Relaxed);
        let mut cqes: Vec<Cqe> = Vec::with_capacity(32);
        match self.net.poll_cq(&mut cqes, 32) {
            Ok(0) => {
                self.replenish();
                return false;
            }
            Ok(_) => {}
            Err(NetError::Retry(_)) => return false, // endpoint busy
            Err(NetError::Fatal(m)) => panic!("gasnet fatal: {m}"),
        }
        for cqe in &cqes {
            match cqe.kind {
                CqeKind::RecvDone => {
                    let (ty, arg, hidx) = crate::proto::decode(cqe.imm).expect("gasnet header");
                    assert_eq!(ty, crate::proto::BType::Am, "gasnet only speaks AM");
                    let handler =
                        self.handlers.read(hidx as usize).expect("unregistered AM handler");
                    // Reclaim the staging buffer, run the handler inline
                    // (AM semantics), then recycle.
                    let buf = {
                        let mut st = self.staging.lock();
                        st.nposted -= 1;
                        st.bufs[cqe.ctx as usize].take().expect("staging buf")
                    };
                    handler(cqe.src_rank, arg, &buf[..cqe.len]);
                    let mut st = self.staging.lock();
                    st.bufs[cqe.ctx as usize] = Some(buf);
                    st.free.push(cqe.ctx as u32);
                }
                CqeKind::SendDone => {}
                other => panic!("gasnet unexpected completion {other:?}"),
            }
        }
        self.replenish();
        true
    }

    /// Number of `poll` invocations (diagnostics for the benches).
    pub fn poll_count(&self) -> usize {
        self.polls.load(Ordering::Relaxed)
    }

    fn replenish(&self) {
        let mut st = self.staging.lock();
        while st.nposted < self.cfg.prepost {
            let id = match st.free.pop() {
                Some(id) => id,
                None => {
                    st.bufs.push(Some(vec![0u8; self.cfg.max_medium].into_boxed_slice()));
                    (st.bufs.len() - 1) as u32
                }
            };
            let buf = st.bufs[id as usize].as_ref().expect("free staging buf");
            let ptr = buf.as_ptr() as *mut u8;
            let len = buf.len();
            // SAFETY: the buffer stays in `bufs` (stable Box address)
            // until the matching RecvDone removes it.
            let desc = unsafe { RecvBufDesc::new(ptr, len, id as u64) };
            match self.net.post_recv(desc) {
                Ok(()) => st.nposted += 1,
                Err(_) => {
                    st.free.push(id);
                    break;
                }
            }
        }
        let _ = &self.pending; // reserved for future large-AM support
    }
}

impl std::fmt::Debug for Gasnet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gasnet").field("rank", &self.rank).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn am_roundtrip() {
        let fabric = Fabric::new(2);
        let f2 = fabric.clone();
        let t = std::thread::spawn(move || {
            let g = Gasnet::init(f2, 1, GasnetConfig::default());
            let sum = Arc::new(AtomicU64::new(0));
            let s2 = sum.clone();
            g.register_handler(move |src, arg, payload| {
                assert_eq!(src, 0);
                s2.fetch_add(arg as u64 + payload.len() as u64, Ordering::SeqCst);
            });
            while sum.load(Ordering::SeqCst) < 3 * (5 + 10) {
                g.poll();
            }
        });
        let g = Gasnet::init(fabric, 0, GasnetConfig::default());
        g.register_handler(|_, _, _| {});
        for _ in 0..3 {
            g.am_request_medium(1, 0, 5, &[1u8; 10]);
        }
        t.join().unwrap();
    }

    #[test]
    fn handlers_run_inside_poll() {
        let fabric = Fabric::new(1);
        let g = Gasnet::init(fabric, 0, GasnetConfig::default());
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        g.register_handler(move |_, _, _| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        // Self-send: handler must only run during poll.
        g.am_request_medium(0, 0, 0, b"x");
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        while hits.load(Ordering::SeqCst) == 0 {
            g.poll();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn try_request_nonblocking() {
        let fabric = Fabric::new(1);
        let g = Gasnet::init(fabric, 0, GasnetConfig::default());
        g.register_handler(|_, _, _| {});
        assert!(g.am_try_request_medium(0, 0, 0, &[0u8; 16]));
        assert!(!g.am_try_request_medium(0, 0, 0, &vec![0u8; 100_000]));
    }
}
