//! Wire-header encoding for the baseline libraries.
//!
//! Deliberately *not* shared with the `lci` crate: each library defines
//! its own protocol, exactly as MPICH and GASNet-EX do in reality. The
//! layout happens to be similar (64-bit immediate: type, tag, aux).

/// Message types on the baseline wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BType {
    /// Eager two-sided message.
    Eager = 1,
    /// Rendezvous ready-to-send (payload: send_id u32 + size u64).
    Rts = 2,
    /// Rendezvous ready-to-receive (payload: send_id u32 + recv_id u32 +
    /// rkey u32).
    Rtr = 3,
    /// Rendezvous finish (write-immediate, aux = recv_id).
    Fin = 4,
    /// Active message (aux = handler index).
    Am = 5,
}

impl BType {
    /// Decodes the type bits.
    pub fn from_bits(v: u64) -> Option<BType> {
        Some(match v {
            1 => BType::Eager,
            2 => BType::Rts,
            3 => BType::Rtr,
            4 => BType::Fin,
            5 => BType::Am,
            _ => return None,
        })
    }
}

/// Encodes a baseline header.
pub fn encode(ty: BType, tag: u32, aux: u32) -> u64 {
    ((ty as u64) << 60) | ((tag as u64) << 24) | (aux as u64 & 0xFF_FFFF)
}

/// Decodes a baseline header into `(type, tag, aux)`.
pub fn decode(imm: u64) -> Option<(BType, u32, u32)> {
    let ty = BType::from_bits((imm >> 60) & 0xF)?;
    let tag = ((imm >> 24) & 0xFFFF_FFFF) as u32;
    let aux = (imm & 0xFF_FFFF) as u32;
    Some((ty, tag, aux))
}

/// RTS payload codec.
pub fn encode_rts(send_id: u32, size: u64) -> [u8; 12] {
    let mut out = [0u8; 12];
    out[..4].copy_from_slice(&send_id.to_le_bytes());
    out[4..].copy_from_slice(&size.to_le_bytes());
    out
}

/// Decodes an RTS payload.
pub fn decode_rts(b: &[u8]) -> Option<(u32, u64)> {
    if b.len() < 12 {
        return None;
    }
    Some((
        u32::from_le_bytes(b[..4].try_into().ok()?),
        u64::from_le_bytes(b[4..12].try_into().ok()?),
    ))
}

/// RTR payload codec.
pub fn encode_rtr(send_id: u32, recv_id: u32, rkey: u32) -> [u8; 12] {
    let mut out = [0u8; 12];
    out[..4].copy_from_slice(&send_id.to_le_bytes());
    out[4..8].copy_from_slice(&recv_id.to_le_bytes());
    out[8..].copy_from_slice(&rkey.to_le_bytes());
    out
}

/// Decodes an RTR payload.
pub fn decode_rtr(b: &[u8]) -> Option<(u32, u32, u32)> {
    if b.len() < 12 {
        return None;
    }
    Some((
        u32::from_le_bytes(b[..4].try_into().ok()?),
        u32::from_le_bytes(b[4..8].try_into().ok()?),
        u32::from_le_bytes(b[8..12].try_into().ok()?),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        for ty in [BType::Eager, BType::Rts, BType::Rtr, BType::Fin, BType::Am] {
            let imm = encode(ty, 0xFEED_1234, 0xABCD);
            let (t, tag, aux) = decode(imm).unwrap();
            assert_eq!(t, ty);
            assert_eq!(tag, 0xFEED_1234);
            assert_eq!(aux, 0xABCD);
        }
        assert!(decode(0).is_none());
    }

    #[test]
    fn payload_roundtrip() {
        assert_eq!(decode_rts(&encode_rts(3, 1 << 33)).unwrap(), (3, 1 << 33));
        assert_eq!(decode_rtr(&encode_rtr(3, 9, 77)).unwrap(), (3, 9, 77));
        assert!(decode_rts(&[0; 3]).is_none());
        assert!(decode_rtr(&[0; 3]).is_none());
    }
}
