//! Standard-MPI stand-in: a single coarse-locked [`Channel`] per process
//! with MPI-1 semantics (in-order matching, wildcards, progress inside
//! test/wait). See the crate docs for the modelling argument.

use crate::channel::{Channel, ChannelConfig};
pub use crate::channel::{MpiStatus, Request, ANY_SOURCE, ANY_TAG};
use lci_fabric::sync::LockDiscipline;
use lci_fabric::{DeviceConfig, Fabric, Rank};
use std::sync::Arc;

/// MPI-sim configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct MpiConfig {
    /// Underlying channel configuration.
    pub channel: ChannelConfig,
}

impl MpiConfig {
    /// Runs over the ibv-like fabric backend (Expanse stand-in), with the
    /// blocking lock discipline of stock MPI.
    pub fn ibv() -> Self {
        Self {
            channel: ChannelConfig {
                device: DeviceConfig::ibv().with_discipline(LockDiscipline::Blocking),
                ..ChannelConfig::default()
            },
        }
    }

    /// Runs over the ofi-like fabric backend (Delta stand-in).
    pub fn ofi() -> Self {
        Self {
            channel: ChannelConfig {
                device: DeviceConfig::ofi().with_discipline(LockDiscipline::Blocking),
                ..ChannelConfig::default()
            },
        }
    }
}

/// An MPI-communicator-like handle: `isend`/`irecv`/`test`/`wait` with a
/// global lock, like a classic `MPI_THREAD_MULTIPLE` build.
#[derive(Clone)]
pub struct MpiComm {
    ch: Arc<Channel>,
    nranks: usize,
}

impl MpiComm {
    /// Initializes the library for `rank` ("MPI_Init").
    pub fn init(fabric: Arc<Fabric>, rank: Rank, cfg: MpiConfig) -> Self {
        let nranks = fabric.nranks();
        Self { ch: Arc::new(Channel::new(fabric, rank, cfg.channel)), nranks }
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.ch.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// The device index of this communicator's channel (needed by peers
    /// only when layering multiple libraries on one fabric).
    pub fn dev_id(&self) -> usize {
        self.ch.dev_id()
    }

    /// Nonblocking send (`MPI_Isend`). The request completes when the
    /// source buffer is reusable.
    pub fn isend(&self, dest: Rank, data: Vec<u8>, tag: u32) -> Request {
        self.ch.isend(dest, self.ch.dev_id(), data, tag)
    }

    /// Nonblocking receive (`MPI_Irecv`); `ANY_SOURCE`/`ANY_TAG` wildcards
    /// are honoured with in-order matching.
    pub fn irecv(&self, src: Rank, tag: u32, max_size: usize) -> Request {
        self.ch.irecv(src, tag, max_size)
    }

    /// Tests a request, making progress as a side effect (`MPI_Test`).
    pub fn test(&self, req: &Request) -> bool {
        self.ch.test(req)
    }

    /// Blocks until completion (`MPI_Wait`).
    pub fn wait(&self, req: &Request) -> MpiStatus {
        self.ch.wait(req)
    }

    /// Explicit progress pump (not in MPI's interface, but what a
    /// benchmarking wrapper needs).
    pub fn progress(&self) -> bool {
        self.ch.progress()
    }

    /// Operations still needing this process's progress (see
    /// [`Channel::pending`](crate::channel::Channel::pending)).
    pub fn pending(&self) -> usize {
        self.ch.pending()
    }

    /// Blocking send convenience.
    pub fn send(&self, dest: Rank, data: Vec<u8>, tag: u32) {
        let r = self.isend(dest, data, tag);
        self.wait(&r);
    }

    /// Blocking receive convenience.
    pub fn recv(&self, src: Rank, tag: u32, max_size: usize) -> MpiStatus {
        let r = self.irecv(src, tag, max_size);
        self.wait(&r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_send_recv_roundtrip() {
        let fabric = Fabric::new(2);
        let f2 = fabric.clone();
        let t = std::thread::spawn(move || {
            let mpi = MpiComm::init(f2, 1, MpiConfig::default());
            let st = mpi.recv(0, 3, 1024);
            assert_eq!(st.data, b"mpi hello".to_vec());
            mpi.send(0, b"reply".to_vec(), 4);
        });
        let mpi = MpiComm::init(fabric, 0, MpiConfig::default());
        mpi.send(1, b"mpi hello".to_vec(), 3);
        let st = mpi.recv(1, 4, 64);
        assert_eq!(st.data, b"reply".to_vec());
        t.join().unwrap();
    }

    #[test]
    fn ofi_config_works() {
        let fabric = Fabric::new(2);
        let f2 = fabric.clone();
        let t = std::thread::spawn(move || {
            let mpi = MpiComm::init(f2, 1, MpiConfig::ofi());
            let st = mpi.recv(ANY_SOURCE, ANY_TAG, 64);
            assert_eq!(st.tag, 8);
        });
        let mpi = MpiComm::init(fabric, 0, MpiConfig::ofi());
        mpi.send(1, vec![1, 2, 3], 8);
        t.join().unwrap();
    }
}
