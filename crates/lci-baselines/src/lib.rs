//! # lci-baselines — the comparison libraries of the LCI paper (§5.2)
//!
//! The paper compares LCI against three communication stacks:
//!
//! * **standard MPI** (MPICH 4.3) — modelled by [`mpi_sim`]: an MPI-1
//!   style two-sided library with *in-order* matching, `ANY_SOURCE` /
//!   `ANY_TAG` wildcards, and a single big lock around the entire
//!   matching/progress state (the classic `MPI_THREAD_MULTIPLE`
//!   implementation strategy the multithreaded-MPI literature studies);
//! * **MPICH with the VCI extension** (*mpix*) — modelled by [`vci`]:
//!   the same channel design replicated N times, each VCI with its own
//!   device, matching state and lock. Scales with the VCI count but
//!   keeps the coarse per-VCI lock, so intra-VCI threading efficiency
//!   stays MPI-like;
//! * **GASNet-EX** — modelled by [`gasnet_sim`]: an active-message
//!   library (`am_request_medium`-style) with one shared endpoint, AM
//!   handlers executed inside the poll path, and no resource-replication
//!   mode (the paper notes GASNet-EX lacks dedicated-resource support).
//!
//! All three run on the *same* [`lci_fabric`] as LCI itself, so every
//! difference measured by the benchmark harness comes from the library
//! designs — lock placement, matching semantics, progress structure —
//! not from the simulated wire.

pub mod channel;
pub mod gasnet_sim;
pub mod mpi_sim;
pub mod proto;
pub mod vci;

pub use gasnet_sim::{Gasnet, GasnetConfig};
pub use mpi_sim::{MpiComm, MpiConfig, MpiStatus, Request, ANY_SOURCE, ANY_TAG};
pub use vci::VciComm;
