//! MPICH-VCI-extension stand-in (*mpix*): the coarse-locked channel
//! replicated N times. Each VCI owns a fabric device, a matching state
//! and a lock; threads that keep to distinct VCIs do not contend — but
//! *within* a VCI everything still serializes, which is exactly the
//! design point paper Fig. 3/7 measure (mpix needs ~8 VCIs to match what
//! LCI reaches with 1-2 devices).
//!
//! The benchmark harness mirrors the paper's tuning: wildcards are not
//! used across VCIs (`mpi_assert_no_any_tag`), and a thread only
//! progresses its own VCI (`MPIR_CVAR_CH4_GLOBAL_PROGRESS=0`).

use crate::channel::{Channel, ChannelConfig, MpiStatus, Request};
use lci_fabric::{Fabric, Rank};
use std::sync::Arc;

/// The multi-VCI communicator.
#[derive(Clone)]
pub struct VciComm {
    vcis: Arc<Vec<Channel>>,
    nranks: usize,
}

impl VciComm {
    /// Initializes `nvcis` virtual communication interfaces for `rank`.
    /// All ranks must use the same `nvcis` (devices pair up by index).
    pub fn init(fabric: Arc<Fabric>, rank: Rank, nvcis: usize, cfg: ChannelConfig) -> Self {
        assert!(nvcis >= 1);
        let nranks = fabric.nranks();
        let vcis: Vec<Channel> =
            (0..nvcis).map(|_| Channel::new(fabric.clone(), rank, cfg)).collect();
        Self { vcis: Arc::new(vcis), nranks }
    }

    /// Number of VCIs.
    pub fn nvcis(&self) -> usize {
        self.vcis.len()
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.vcis[0].rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// Nonblocking send on a VCI; the message is delivered to the *same*
    /// VCI index at the target (how MPICH maps VCIs to netmod contexts).
    pub fn isend(&self, vci: usize, dest: Rank, data: Vec<u8>, tag: u32) -> Request {
        let ch = &self.vcis[vci];
        ch.isend(dest, ch.dev_id(), data, tag)
    }

    /// Nonblocking receive on a VCI.
    pub fn irecv(&self, vci: usize, src: Rank, tag: u32, max_size: usize) -> Request {
        self.vcis[vci].irecv(src, tag, max_size)
    }

    /// Tests with VCI-local progress (global progress disabled, as in the
    /// paper's MPICH tuning).
    pub fn test(&self, vci: usize, req: &Request) -> bool {
        self.vcis[vci].test(req)
    }

    /// Waits with VCI-local progress.
    pub fn wait(&self, vci: usize, req: &Request) -> MpiStatus {
        self.vcis[vci].wait(req)
    }

    /// Explicit progress on one VCI.
    pub fn progress(&self, vci: usize) -> bool {
        self.vcis[vci].progress()
    }

    /// Operations still needing this VCI's progress.
    pub fn pending(&self, vci: usize) -> usize {
        self.vcis[vci].pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_vci_traffic_is_independent() {
        let fabric = Fabric::new(2);
        let f2 = fabric.clone();
        let nv = 3;
        let t = std::thread::spawn(move || {
            let c = VciComm::init(f2, 1, nv, ChannelConfig::default());
            for v in 0..nv {
                let r = c.irecv(v, 0, v as u32, 256);
                let st = c.wait(v, &r);
                assert_eq!(st.data, vec![v as u8; 32]);
            }
        });
        let c = VciComm::init(fabric, 0, nv, ChannelConfig::default());
        for v in 0..nv {
            let s = c.isend(v, 1, vec![v as u8; 32], v as u32);
            c.wait(v, &s);
        }
        t.join().unwrap();
    }

    #[test]
    fn threads_on_distinct_vcis() {
        let fabric = Fabric::new(2);
        let f2 = fabric.clone();
        let nv = 4;
        let t = std::thread::spawn(move || {
            let c = VciComm::init(f2, 1, nv, ChannelConfig::default());
            let hs: Vec<_> = (0..nv)
                .map(|v| {
                    let c = c.clone();
                    std::thread::spawn(move || {
                        for i in 0..50u32 {
                            let r = c.irecv(v, 0, i, 128);
                            let st = c.wait(v, &r);
                            assert_eq!(st.data.len(), 16);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        });
        let c = VciComm::init(fabric, 0, nv, ChannelConfig::default());
        let hs: Vec<_> = (0..nv)
            .map(|v| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let s = c.isend(v, 1, vec![0u8; 16], i);
                        c.wait(v, &s);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        t.join().unwrap();
    }
}
