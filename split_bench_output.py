#!/usr/bin/env python3
"""Splits bench_output.txt into per-figure files under bench_results/.

When the captured run was made under a transport selector
(``--transport``/``LCI_TRANSPORT``: ``sim-ibv``, ``sim-ofi``, ``shm``,
``tcp``), pass it as argv[1] and the output files carry it as a suffix,
e.g. ``msgrate_thread_tcp.txt`` — the same naming run_benches.sh uses.

With ``--json`` (either invocation) every emitted/selected results file
also gets a machine-readable ``.json`` sibling, and the parsed tables of
all of them are consolidated into ``bench_results/BENCH_10.json``::

    ./split_bench_output.py [transport] --json      # split + JSON
    ./split_bench_output.py --json-only [files...]  # JSON for existing
                                                    # bench_results/*.txt

Table format (``bench::print_header``/``print_row``)::

    == <title> ==
    col1\tcol2...
    cell1\tcell2...
"""
import json
import os
import re
import sys

TRANSPORTS = ("sim-ibv", "sim-ofi", "shm", "tcp")
CONSOLIDATED = "bench_results/BENCH_10.json"


def parse_tables(text):
    """Parses ``== title ==`` tables out of one bench's stdout capture."""
    tables = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^== (.+) ==$", lines[i].strip())
        if not m:
            i += 1
            continue
        title = m.group(1)
        i += 1
        if i >= len(lines) or "\t" not in lines[i]:
            continue
        cols = lines[i].rstrip("\n").split("\t")
        i += 1
        rows = []
        while i < len(lines):
            line = lines[i].rstrip("\n")
            if not line.strip() or line.strip().startswith(("==", "#")):
                break
            cells = line.split("\t")
            if len(cells) != len(cols):
                break
            rows.append(cells)
            i += 1
        tables.append({"title": title, "columns": cols, "rows": rows})
    return tables


def emit_json(txt_path):
    """Writes ``<file>.json`` next to a results file; returns its record."""
    text = open(txt_path).read()
    bench = os.path.splitext(os.path.basename(txt_path))[0]
    record = {"bench": bench, "tables": parse_tables(text)}
    json_path = os.path.splitext(txt_path)[0] + ".json"
    with open(json_path, "w") as f:
        json.dump(record, f, indent=1)
        f.write("\n")
    print("wrote", json_path, f"({len(record['tables'])} tables)")
    return record


def consolidate(records):
    with open(CONSOLIDATED, "w") as f:
        json.dump({"benches": records}, f, indent=1)
        f.write("\n")
    print("wrote", CONSOLIDATED, f"({len(records)} benches)")


def main():
    args = sys.argv[1:]
    want_json = "--json" in args
    json_only = "--json-only" in args
    args = [a for a in args if a not in ("--json", "--json-only")]

    if json_only:
        files = args or sorted(
            os.path.join("bench_results", n)
            for n in os.listdir("bench_results")
            if n.endswith(".txt")
        )
        consolidate([emit_json(p) for p in files])
        return

    transport = args[0] if args else ""
    if transport and transport not in TRANSPORTS:
        sys.exit(
            f"unknown transport {transport!r}; expected {', '.join(TRANSPORTS)}"
        )
    suffix = f"_{transport}" if transport else ""

    src = open("bench_output.txt").read()
    os.makedirs("bench_results", exist_ok=True)
    markers = {
        "table1_semantics": "semantics.txt",
        "fig2_msgrate_process": "msgrate_process.txt",
        "fig3_msgrate_thread": "msgrate_thread.txt",
        "fig4_bandwidth": "bandwidth.txt",
        "fig5_resources": "resources.txt",
        "fig6_kmer": "kmer.txt",
        "fig7_octotiger": "octotiger.txt",
        "ablations": "ablations.txt",
        # The multi-process shm/tcp sweep is its own transport axis
        # (wire column per row): no suffix.
        "shm_scale": ("shm_scale.txt", False),
        "micro_criterion": ("micro_criterion.txt", False),
        # The thread-per-core scale matrix sweeps all transports
        # in-process by default; with a forced transport the suffix
        # records it.
        "scale_matrix": "scale_matrix.txt",
        # The collectives sweep covers its own transport axis in one run
        # (sim-ibv/sim-ofi thread-per-rank + multi-process shm): no
        # suffix.
        "collectives": ("collectives.txt", False),
        # The sparse alltoallv / MoE-routing skew sweep likewise carries
        # its transport per row (sim + multi-process shm/tcp): no
        # suffix.
        "alltoallv": ("alltoallv.txt", False),
    }
    # Sections start at "Running benches/<name>.rs"
    parts = re.split(r"\n(?=\s*Running benches/)", src)
    written = []
    for part in parts:
        m = re.search(r"Running benches/(\w+)\.rs", part)
        if m and m.group(1) in markers:
            entry = markers[m.group(1)]
            name, suffixed = entry if isinstance(entry, tuple) else (entry, True)
            if suffixed and suffix:
                base, ext = name.rsplit(".", 1)
                name = f"{base}{suffix}.{ext}"
            path = f"bench_results/{name}"
            open(path, "w").write(part)
            print("wrote", name, len(part), "bytes")
            written.append(path)
    if want_json:
        consolidate([emit_json(p) for p in written])


if __name__ == "__main__":
    main()
