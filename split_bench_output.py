#!/usr/bin/env python3
"""Splits bench_output.txt into per-figure files under bench_results/."""
import os, re

src = open("bench_output.txt").read()
os.makedirs("bench_results", exist_ok=True)
markers = {
    "table1_semantics": "semantics.txt",
    "fig2_msgrate_process": "msgrate_process.txt",
    "fig3_msgrate_thread": "msgrate_thread.txt",
    "fig4_bandwidth": "bandwidth.txt",
    "fig5_resources": "resources.txt",
    "fig6_kmer": "kmer.txt",
    "fig7_octotiger": "octotiger.txt",
    "ablations": "ablations.txt",
    "micro_criterion": "micro_criterion.txt",
}
# Sections start at "Running benches/<name>.rs"
parts = re.split(r"\n(?=\s*Running benches/)", src)
for part in parts:
    m = re.search(r"Running benches/(\w+)\.rs", part)
    if m and m.group(1) in markers:
        open(f"bench_results/{markers[m.group(1)]}", "w").write(part)
        print("wrote", markers[m.group(1)], len(part), "bytes")
