#!/usr/bin/env python3
"""Splits bench_output.txt into per-figure files under bench_results/.

When the captured run was made under a transport selector
(``--transport``/``LCI_TRANSPORT``: ``sim-ibv``, ``sim-ofi``, ``shm``),
pass it as argv[1] and the output files carry it as a suffix, e.g.
``msgrate_thread_shm.txt`` — the same naming run_benches.sh uses.
"""
import os, re, sys

transport = sys.argv[1] if len(sys.argv) > 1 else ""
if transport and transport not in ("sim-ibv", "sim-ofi", "shm"):
    sys.exit(f"unknown transport {transport!r}; expected sim-ibv, sim-ofi, or shm")
suffix = f"_{transport}" if transport else ""

src = open("bench_output.txt").read()
os.makedirs("bench_results", exist_ok=True)
markers = {
    "table1_semantics": "semantics.txt",
    "fig2_msgrate_process": "msgrate_process.txt",
    "fig3_msgrate_thread": "msgrate_thread.txt",
    "fig4_bandwidth": "bandwidth.txt",
    "fig5_resources": "resources.txt",
    "fig6_kmer": "kmer.txt",
    "fig7_octotiger": "octotiger.txt",
    "ablations": "ablations.txt",
    # The multi-process shm sweep is its own transport axis: no suffix.
    "shm_scale": ("shm_scale.txt", False),
    "micro_criterion": ("micro_criterion.txt", False),
    # The thread-per-core scale matrix sweeps all transports in-process
    # by default; with a forced transport the suffix records it.
    "scale_matrix": "scale_matrix.txt",
    # The collectives sweep covers its own transport axis in one run
    # (sim-ibv/sim-ofi thread-per-rank + multi-process shm): no suffix.
    "collectives": ("collectives.txt", False),
}
# Sections start at "Running benches/<name>.rs"
parts = re.split(r"\n(?=\s*Running benches/)", src)
for part in parts:
    m = re.search(r"Running benches/(\w+)\.rs", part)
    if m and m.group(1) in markers:
        entry = markers[m.group(1)]
        name, suffixed = entry if isinstance(entry, tuple) else (entry, True)
        if suffixed and suffix:
            base, ext = name.rsplit(".", 1)
            name = f"{base}{suffix}.{ext}"
        open(f"bench_results/{name}", "w").write(part)
        print("wrote", name, len(part), "bytes")
