//! Workspace-level integration tests spanning crates: library
//! composition on one fabric, wrapper-level equivalence across backends,
//! and application pipelines end to end.

use lci::{collective, Comp, PostResult, Runtime, RuntimeConfig};
use lci_baselines::{MpiComm, MpiConfig};
use lci_fabric::Fabric;
use lcw::{BackendKind, Platform, ResourceMode, World, WorldConfig};

/// The paper's §3.2.2 composition story: multiple runtimes/libraries can
/// coexist without interfering. Here LCI and the MPI baseline share one
/// fabric on the same ranks (each creates its own devices).
#[test]
fn lci_and_mpi_coexist_on_one_fabric() {
    let fabric = Fabric::new(2);
    let f2 = fabric.clone();
    let peer = std::thread::spawn(move || {
        // Creation order matters for device-index symmetry: LCI runtime
        // first (device 0), MPI channel second (device 1) on both ranks.
        let rt = Runtime::new(f2.clone(), 1, RuntimeConfig::small()).unwrap();
        let mpi = MpiComm::init(f2.clone(), 1, MpiConfig::default());
        f2.oob_barrier();
        // Serve both libraries.
        let cq = Comp::alloc_cq();
        rt.post_recv(0, vec![0u8; 64], 5, cq.clone()).unwrap();
        let lci_msg = loop {
            rt.progress().unwrap();
            if let Some(d) = cq.pop() {
                break d;
            }
        };
        assert_eq!(lci_msg.as_slice(), b"via lci");
        let st = mpi.recv(0, 6, 64);
        assert_eq!(st.data, b"via mpi".to_vec());
        f2.oob_barrier();
    });

    let rt = Runtime::new(fabric.clone(), 0, RuntimeConfig::small()).unwrap();
    let mpi = MpiComm::init(fabric.clone(), 0, MpiConfig::default());
    fabric.oob_barrier();
    let sc = Comp::alloc_sync(1);
    loop {
        match rt.post_send(1, b"via lci".as_slice(), 5, sc.clone()).unwrap() {
            PostResult::Retry(_) => {
                rt.progress().unwrap();
            }
            PostResult::Done(_) => break,
            PostResult::Posted => {
                sc.as_sync().unwrap().wait_with(|| {
                    rt.progress().unwrap();
                });
                break;
            }
        }
    }
    mpi.send(1, b"via mpi".to_vec(), 6);
    // Keep progressing MPI until the peer drains (its request needs our
    // rendezvous participation only for large messages; eager here).
    fabric.oob_barrier();
    peer.join().unwrap();
}

/// All four LCW backends deliver the same AM traffic (one workload, four
/// libraries — the uniformity LCW exists to provide).
#[test]
fn lcw_backends_equivalent_traffic() {
    for backend in [BackendKind::Lci, BackendKind::Mpi, BackendKind::Vci, BackendKind::Gasnet] {
        let mode = match backend {
            BackendKind::Lci | BackendKind::Vci => ResourceMode::Dedicated(2),
            _ => ResourceMode::Shared,
        };
        let cfg = WorldConfig::new(backend, Platform::Expanse, mode);
        let fabric = Fabric::new(2);
        let f2 = fabric.clone();
        let n_msgs = 40;
        let recv = std::thread::spawn(move || {
            let w = World::new(f2, 1, cfg);
            let mut eps: Vec<_> = (0..2).map(|t| w.endpoint(t)).collect();
            let mut sum = 0u64;
            let mut got = 0;
            while got < n_msgs {
                for ep in eps.iter_mut() {
                    ep.progress();
                    while let Some(m) = ep.poll_msg() {
                        sum += m.data[0] as u64;
                        got += 1;
                    }
                }
            }
            sum
        });
        let w = World::new(fabric, 0, cfg);
        let mut eps: Vec<_> = (0..2).map(|t| w.endpoint(t)).collect();
        for i in 0..n_msgs {
            let t = i % 2;
            while !eps[t].send_am(1, &[i as u8; 32], i as u32) {
                eps[t].progress();
            }
        }
        // Pump until the receiver saw everything.
        let expect: u64 = (0..n_msgs as u64).sum();
        loop {
            for ep in eps.iter_mut() {
                ep.progress();
            }
            if recv.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(recv.join().unwrap(), expect, "backend {backend:?}");
    }
}

/// Collectives compose with point-to-point traffic in flight.
#[test]
fn collectives_with_background_traffic() {
    let nranks = 3;
    let fabric = Fabric::new(nranks);
    let handles: Vec<_> = (0..nranks)
        .map(|rank| {
            let fabric = fabric.clone();
            std::thread::spawn(move || {
                let rt = Runtime::new(fabric.clone(), rank, RuntimeConfig::small()).unwrap();
                fabric.oob_barrier();
                // Every rank sends one message to every other rank, then
                // everyone reduces the number of messages they received.
                let cq = Comp::alloc_cq();
                for peer in (0..nranks).filter(|&p| p != rank) {
                    rt.post_recv(peer, vec![0u8; 32], 1, cq.clone()).unwrap();
                }
                let noop = Comp::alloc_handler(|_| {});
                for peer in (0..nranks).filter(|&p| p != rank) {
                    while let PostResult::Retry(_) =
                        rt.post_send(peer, vec![1u8; 16], 1, noop.clone()).unwrap()
                    {
                        rt.progress().unwrap();
                    }
                }
                let mut got = 0u64;
                while got < (nranks - 1) as u64 {
                    rt.progress().unwrap();
                    if cq.pop().is_some() {
                        got += 1;
                    }
                }
                let total = collective::allreduce_u64(&rt, &[got], |a, b| a + b).unwrap();
                assert_eq!(total, vec![(nranks * (nranks - 1)) as u64]);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// End-to-end: the k-mer pipeline and octo-mini run back to back on the
/// same process (separate fabrics), exercising every layer of the stack.
#[test]
fn applications_end_to_end() {
    // k-mer.
    let kcfg = kmer::KmerConfig {
        reads: kmer::ReadSetConfig {
            genome_len: 2_000,
            n_reads: 200,
            read_len: 60,
            error_rate: 0.01,
            seed: 3,
        },
        k: 17,
        nthreads: 2,
        agg_size: 512,
        world: WorldConfig::new(BackendKind::Lci, Platform::Delta, ResourceMode::Dedicated(2)),
        expected_distinct: 10_000,
        max_count: 16,
    };
    let serial = kmer::serial_reference(&kcfg, 2);
    let fabric = Fabric::new(2);
    let handles: Vec<_> = (0..2)
        .map(|r| {
            let fabric = fabric.clone();
            std::thread::spawn(move || kmer::run_rank(fabric, r, kcfg))
        })
        .collect();
    for h in handles {
        let res = h.join().unwrap();
        // count>=2 buckets are order-independent and must match exactly;
        // the count-1 bucket is Bloom false-positive noise (see kmer
        // driver docs).
        assert_eq!(res.histogram[2..], serial.histogram[2..]);
    }

    // octo-mini (on the ofi-sim platform for variety).
    let ocfg = amt::OctoConfig {
        n_particles: 300,
        steps: 2,
        nthreads: 2,
        chunk: 64,
        world: WorldConfig::new(BackendKind::Lci, Platform::Delta, ResourceMode::Dedicated(2)),
        ..amt::OctoConfig::default()
    };
    let fabric = Fabric::new(2);
    let handles: Vec<_> = (0..2)
        .map(|r| {
            let fabric = fabric.clone();
            std::thread::spawn(move || amt::run_octo_rank(fabric, r, ocfg))
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap().final_local_particles).sum();
    assert_eq!(total, 300);
}
